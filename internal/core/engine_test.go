package core

import (
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/isa"
	"specfetch/internal/metrics"
	"specfetch/internal/program"
	"specfetch/internal/trace"
)

// progBuilder is a tiny DSL for hand-built test programs.
type progBuilder struct {
	t *testing.T
	b *program.Builder
}

func newProg(t *testing.T, base isa.Addr) *progBuilder {
	t.Helper()
	b, err := program.NewBuilder(base)
	if err != nil {
		t.Fatal(err)
	}
	return &progBuilder{t: t, b: b}
}

func (p *progBuilder) plains(n int) *progBuilder { p.b.AppendPlain(n); return p }
func (p *progBuilder) inst(k isa.Kind, target isa.Addr) isa.Addr {
	return p.b.Append(program.Inst{Kind: k, Target: target})
}
func (p *progBuilder) build() *program.Image {
	p.t.Helper()
	img, err := p.b.Build()
	if err != nil {
		p.t.Fatal(err)
	}
	return img
}

// run executes a hand-built program/trace and fails on engine errors.
func run(t *testing.T, cfg Config, img *program.Image, recs []trace.Record) Result {
	t.Helper()
	res, err := Run(cfg, img, trace.NewSliceReader(recs), bpred.NewDefaultDecoupled())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// cfgWith returns the baseline config with a policy.
func cfgWith(pol Policy) Config {
	cfg := DefaultConfig()
	cfg.Policy = pol
	return cfg
}

// TestStraightLineTiming checks the exact cycle count of sequential code:
// every 8-instruction line cold-misses once (5-cycle fill) and then issues
// over two 4-wide cycles.
func TestStraightLineTiming(t *testing.T) {
	const lines = 8
	img := newProg(t, 0).plains(lines * 8).build()
	recs := []trace.Record{{Start: 0, N: lines * 8, BrKind: isa.Plain}}

	res := run(t, cfgWith(Optimistic), img, recs)

	if got, want := res.Insts, int64(lines*8); got != want {
		t.Fatalf("insts = %d, want %d", got, want)
	}
	// Per line: 5 stall cycles + 2 issue cycles.
	if got, want := res.Cycles, Cycles(lines*7); got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
	if got, want := res.RightPathMisses, int64(lines); got != want {
		t.Errorf("right-path misses = %d, want %d", got, want)
	}
	if got, want := res.Lost[metrics.RTICache], Slots(lines*5*4); got != want {
		t.Errorf("rt_icache slots = %d, want %d", got, want)
	}
	for _, c := range []metrics.Component{metrics.Branch, metrics.BranchFull,
		metrics.ForceResolve, metrics.Bus, metrics.WrongICache} {
		if res.Lost[c] != 0 {
			t.Errorf("%s = %d, want 0", c, res.Lost[c])
		}
	}
	if got, want := res.Traffic.DemandFills, uint64(lines); got != want {
		t.Errorf("demand fills = %d, want %d", got, want)
	}
}

// TestPessimisticForceResolve checks the decode gate Pessimistic and Decode
// impose on right-path misses: each line crossing waits for the previous
// group's decode before the fill starts.
func TestPessimisticForceResolve(t *testing.T) {
	const lines = 8
	img := newProg(t, 0).plains(lines * 8).build()
	recs := []trace.Record{{Start: 0, N: lines * 8, BrKind: isa.Plain}}

	for _, pol := range []Policy{Pessimistic, Decode} {
		res := run(t, cfgWith(pol), img, recs)
		// The first miss at cycle 0 has no prior instructions (no gate).
		// Every subsequent line: previous group issued at cy-1, gate is
		// cy+1, so exactly one force_resolve cycle per line.
		if got, want := res.Lost[metrics.ForceResolve], Slots((lines-1)*4); got != want {
			t.Errorf("%s: force_resolve slots = %d, want %d", pol, got, want)
		}
		if got, want := res.Cycles, Cycles(lines*7+(lines-1)); got != want {
			t.Errorf("%s: cycles = %d, want %d", pol, got, want)
		}
	}
}

// TestLoopMisfetchThenBTBHit checks that the first occurrence of a taken
// conditional pays exactly the 2-cycle misfetch penalty (predicted taken by
// the weakly-taken counter, target unknown), and later occurrences hit the
// BTB for free.
func TestLoopMisfetchThenBTBHit(t *testing.T) {
	p := newProg(t, 0)
	p.plains(7)
	p.inst(isa.CondBranch, 0) // loop back to the start
	img := p.build()

	const iters = 10
	recs := make([]trace.Record, iters)
	for i := range recs {
		recs[i] = trace.Record{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: true, Target: 0}
	}

	res := run(t, cfgWith(Oracle), img, recs)

	if got, want := res.Insts, int64(iters*8); got != want {
		t.Fatalf("insts = %d, want %d", got, want)
	}
	if got, want := res.Events.BTBMisfetches, int64(1); got != want {
		t.Errorf("misfetches = %d, want %d (first occurrence only)", got, want)
	}
	if got, want := res.Events.BTBMisfetchSlots, Slots(8); got != want {
		t.Errorf("misfetch slots = %d, want %d", got, want)
	}
	if res.Events.PHTMispredicts != 0 {
		t.Errorf("mispredicts = %d, want 0 (always taken, counter starts weakly taken)",
			res.Events.PHTMispredicts)
	}
	// Cold miss (5 cycles) + 2 issue cycles for iteration 1, then the
	// 2-cycle misfetch window, then 2 cycles per remaining iteration.
	if got, want := res.Cycles, Cycles(5+2+2+2*(iters-1)); got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
	if got, want := res.Lost[metrics.Branch], Slots(8); got != want {
		t.Errorf("branch slots = %d, want %d", got, want)
	}
}

// TestMispredictPenalty checks the 4-cycle (16-slot) mispredict penalty:
// a conditional that is never taken but starts weakly-taken pays one
// combined misfetch+mispredict on its first execution and then predicts
// correctly.
func TestMispredictPenalty(t *testing.T) {
	p := newProg(t, 0)
	p.plains(3)
	condTarget := isa.Addr(16 * 4) // somewhere later in the image
	p.inst(isa.CondBranch, condTarget)
	p.plains(20)
	img := p.build()

	// Execute the block [0..cond] twice (via a second record continuing at
	// the fall-through, then wrapping is impossible — so run two separate
	// sequential passes is not possible; instead check single occurrence).
	recs := []trace.Record{
		{Start: 0, N: 4, BrKind: isa.CondBranch, Taken: false},
		{Start: 4 * 4, N: 8, BrKind: isa.Plain},
	}

	res := run(t, cfgWith(Oracle), img, recs)

	if got, want := res.Events.PHTMispredicts, int64(1); got != want {
		t.Fatalf("mispredicts = %d, want %d", got, want)
	}
	// The branch issues at slot 3 of its cycle, so the event costs the
	// remaining 0 slots of that cycle plus 4 full dead cycles = 16 slots.
	if got, want := res.Events.PHTMispredictSlots, Slots(16); got != want {
		t.Errorf("mispredict slots = %d, want %d", got, want)
	}
	if res.Events.BTBMisfetches != 0 {
		t.Errorf("misfetches = %d, want 0 (the combined event classifies as mispredict)",
			res.Events.BTBMisfetches)
	}
}

// TestBranchFullAtDepthOne checks the speculation-depth limit: with one
// unresolved branch allowed, a second conditional stalls until the first
// resolves; with depth 4 the same trace has no branch_full penalty.
func TestBranchFullAtDepthOne(t *testing.T) {
	// One taken conditional per 8 instructions: a 4-wide machine fetches a
	// conditional every 2 cycles, so with a 5-cycle resolve window at most
	// 3 are outstanding — fine at depth 4, stalled at depth 1.
	p := newProg(t, 0)
	p.plains(7)
	p.inst(isa.CondBranch, 0)
	img := p.build()

	const iters = 20
	var recs []trace.Record
	for i := 0; i < iters; i++ {
		recs = append(recs,
			trace.Record{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: true, Target: 0},
		)
	}

	deep := cfgWith(Oracle)
	deep.MaxUnresolved = 4
	resDeep := run(t, deep, img, recs)

	shallow := cfgWith(Oracle)
	shallow.MaxUnresolved = 1
	resShallow := run(t, shallow, img, recs)

	if resDeep.Lost[metrics.BranchFull] != 0 {
		t.Errorf("depth 4: branch_full = %d, want 0", resDeep.Lost[metrics.BranchFull])
	}
	if resShallow.Lost[metrics.BranchFull] == 0 {
		t.Error("depth 1: branch_full = 0, want > 0")
	}
	if resShallow.Cycles <= resDeep.Cycles {
		t.Errorf("depth 1 cycles %d not greater than depth 4 cycles %d",
			resShallow.Cycles, resDeep.Cycles)
	}
}

// wrongPathMissSetup builds the scenario both the Optimistic wrong_icache
// test and the Resume bus test share: a misfetch at the last slot of line 0
// whose fall-through wrong path immediately misses line 1.
//
// Layout: line0 = 7 plains + cond (taken, target = index 0); line1 onward =
// plains. The conditional's first execution is predicted taken (weak
// counter) with a BTB miss, so fetch runs down the fall-through (line 1)
// for the 2-cycle misfetch window and then redirects to the computed
// target.
func wrongPathMissSetup(t *testing.T) (*program.Image, []trace.Record) {
	t.Helper()
	p := newProg(t, 0)
	p.plains(7)
	p.inst(isa.CondBranch, 0)
	p.plains(16) // lines 1 and 2
	img := p.build()

	recs := []trace.Record{
		{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: true, Target: 0},
		// Second iteration, ending the trace while taken.
		{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: true, Target: 0},
		{Start: 0, N: 8, BrKind: isa.Plain},
	}
	return img, recs
}

// TestOptimisticWrongICacheOverhang: the wrong-path fill initiated during
// the misfetch window blocks the redirect until it completes; the overhang
// beyond the window is charged to wrong_icache.
func TestOptimisticWrongICacheOverhang(t *testing.T) {
	img, recs := wrongPathMissSetup(t)
	res := run(t, cfgWith(Optimistic), img, recs)

	// Timeline: cold miss cycles 0-4; issue cycles 5,6; misfetch window
	// cycles 7,8 with the wrong-path miss on line 1 at cycle 7 starting a
	// fill that completes at cycle 12; redirect waits 9..11.
	if got, want := res.Lost[metrics.WrongICache], Slots(3*4); got != want {
		t.Errorf("wrong_icache slots = %d, want %d", got, want)
	}
	if got, want := res.Traffic.WrongPathFills, uint64(1); got != want {
		t.Errorf("wrong-path fills = %d, want %d", got, want)
	}
	if got, want := res.WrongPathMisses, int64(1); got != want {
		t.Errorf("wrong-path misses = %d, want %d", got, want)
	}
}

// TestResumeAvoidsWrongICache: with the resume buffer, the same scenario
// redirects immediately; the wrong-path fill only occupies the bus.
func TestResumeAvoidsWrongICache(t *testing.T) {
	img, recs := wrongPathMissSetup(t)
	res := run(t, cfgWith(Resume), img, recs)

	if res.Lost[metrics.WrongICache] != 0 {
		t.Errorf("wrong_icache slots = %d, want 0", res.Lost[metrics.WrongICache])
	}
	// The redirect target (line 0) is resident, so no bus wait either: the
	// correct path never needs the bus before the wrong-path fill drains.
	if res.Lost[metrics.Bus] != 0 {
		t.Errorf("bus slots = %d, want 0", res.Lost[metrics.Bus])
	}
	if got, want := res.Traffic.WrongPathFills, uint64(1); got != want {
		t.Errorf("wrong-path fills = %d, want %d", got, want)
	}
	// Resume must beat Optimistic on this trace.
	opt := run(t, cfgWith(Optimistic), img, recs)
	if res.Cycles >= opt.Cycles {
		t.Errorf("resume cycles %d not below optimistic %d", res.Cycles, opt.Cycles)
	}
}

// TestOracleIgnoresWrongPathMiss: Oracle never services wrong-path misses,
// so the same scenario costs only the misfetch window.
func TestOracleIgnoresWrongPathMiss(t *testing.T) {
	img, recs := wrongPathMissSetup(t)
	res := run(t, cfgWith(Oracle), img, recs)

	if res.Traffic.WrongPathFills != 0 {
		t.Errorf("wrong-path fills = %d, want 0", res.Traffic.WrongPathFills)
	}
	if res.Lost[metrics.WrongICache] != 0 {
		t.Errorf("wrong_icache = %d, want 0", res.Lost[metrics.WrongICache])
	}
	// Wrong-path miss is still observed (and counted) even if not serviced.
	if got, want := res.WrongPathMisses, int64(1); got != want {
		t.Errorf("wrong-path misses = %d, want %d", got, want)
	}
}

// TestResumeBusWaitOnSameLine: after a redirect, a correct-path access to
// the very line the resume buffer is still receiving waits on the bus
// rather than issuing a second memory request.
func TestResumeBusWaitOnSameLine(t *testing.T) {
	p := newProg(t, 0)
	p.plains(7)
	p.inst(isa.CondBranch, 0) // line 0 loop branch
	p.plains(16)              // lines 1, 2
	img := p.build()

	// First iteration triggers the misfetch whose wrong path fills line 1;
	// the correct path then loops once more and falls through into line 1
	// (the conditional not taken on the final pass).
	recs := []trace.Record{
		{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: true, Target: 0},
		{Start: 0, N: 8, BrKind: isa.CondBranch, Taken: false},
		{Start: 32, N: 8, BrKind: isa.Plain},
	}

	res := run(t, cfgWith(Resume), img, recs)

	// The fall-through into line 1 happens while (or after) the wrong-path
	// fill of line 1 is in flight; no second demand fill may be issued.
	if got, want := res.Traffic.DemandFills+res.Traffic.WrongPathFills, uint64(2); got != want {
		t.Errorf("total fills = %d, want %d (cold line0 + wrong-path line1)", got, want)
	}
	// And the access must not be a miss (the fill was already on its way).
	if got, want := res.RightPathMisses, int64(1); got != want {
		t.Errorf("right-path misses = %d, want %d (only the cold miss)", got, want)
	}
}

// TestNextLinePrefetch checks the first-reference next-line prefetcher:
// sequential code prefetches each following line, halving the stall pattern.
func TestNextLinePrefetch(t *testing.T) {
	const lines = 8
	img := newProg(t, 0).plains(lines * 8).build()
	recs := []trace.Record{{Start: 0, N: lines * 8, BrKind: isa.Plain}}

	cfg := cfgWith(Oracle)
	cfg.NextLinePrefetch = true
	res := run(t, cfg, img, recs)

	base := run(t, cfgWith(Oracle), img, recs)

	if res.Cycles >= base.Cycles {
		t.Errorf("prefetch cycles %d not below base %d", res.Cycles, base.Cycles)
	}
	if res.Traffic.PrefetchFills == 0 {
		t.Error("no prefetches issued")
	}
	// Sequential code: every line but the first is prefetchable; line 0
	// demand-misses, and each line's first access arms the next prefetch.
	if got, want := res.Traffic.PrefetchFills, uint64(lines); got != want {
		// Line 7 prefetches line 8 (past the used code) too.
		t.Errorf("prefetch fills = %d, want %d", got, want)
	}
	if res.Lost[metrics.Bus] == 0 {
		t.Error("expected some bus waits (demand access reaching a line mid-prefetch)")
	}
}

// TestPrefetchTrafficCost: prefetching must increase total memory traffic.
func TestPrefetchTrafficCost(t *testing.T) {
	const lines = 8
	img := newProg(t, 0).plains(lines * 8).build()
	recs := []trace.Record{{Start: 0, N: lines * 8, BrKind: isa.Plain}}

	base := run(t, cfgWith(Oracle), img, recs)
	cfg := cfgWith(Oracle)
	cfg.NextLinePrefetch = true
	pref := run(t, cfg, img, recs)

	if pref.Traffic.Total() <= base.Traffic.Total() {
		t.Errorf("prefetch traffic %d not above base %d", pref.Traffic.Total(), base.Traffic.Total())
	}
}

// TestRedirectTraceMismatch: the engine must detect a trace whose next
// record contradicts the redirect target.
func TestRedirectTraceMismatch(t *testing.T) {
	p := newProg(t, 0)
	p.plains(3)
	p.inst(isa.CondBranch, 64)
	p.plains(20)
	img := p.build()

	recs := []trace.Record{
		{Start: 0, N: 4, BrKind: isa.CondBranch, Taken: true, Target: 64},
		// Wrong: execution should continue at 64.
		{Start: 32, N: 4, BrKind: isa.Plain},
	}
	_, err := Run(cfgWith(Oracle), img, trace.NewSliceReader(recs), bpred.NewDefaultDecoupled())
	if err == nil {
		t.Fatal("expected redirect/trace mismatch error")
	}
}

// TestMaxInstsBudget: the run stops at (or just past) the instruction
// budget, never consuming the whole trace.
func TestMaxInstsBudget(t *testing.T) {
	img := newProg(t, 0).plains(800).build()
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, trace.Record{Start: isa.Addr(i * 80 * 4), N: 80, BrKind: isa.Plain})
	}
	cfg := cfgWith(Optimistic)
	cfg.MaxInsts = 100
	res := run(t, cfg, img, recs)
	if res.Insts < 100 || res.Insts >= 200 {
		t.Errorf("insts = %d, want about 100", res.Insts)
	}
}

// TestIndirectBTBTargetMispredict: an indirect jump whose BTB entry holds a
// stale target pays the 4-cycle BTB-mispredict penalty.
func TestIndirectBTBTargetMispredict(t *testing.T) {
	p := newProg(t, 0)
	p.plains(7)
	ij := p.inst(isa.IndirectJump, 0)
	p.plains(24)
	_ = ij
	img := p.build()

	t1, t2 := isa.Addr(12*4), isa.Addr(20*4)
	recs := []trace.Record{
		// First execution: BTB miss -> misfetch.
		{Start: 0, N: 8, BrKind: isa.IndirectJump, Taken: true, Target: t1},
		{Start: t1, N: 4, BrKind: isa.Plain},
		// Jump back is impossible without a branch; append a direct record
		// restart at 0 is a discontinuity — instead the second execution
		// comes from a fresh engine below.
	}
	res := run(t, cfgWith(Oracle), img, recs)
	if got, want := res.Events.BTBMisfetches, int64(1); got != want {
		t.Fatalf("first run misfetches = %d, want %d", got, want)
	}

	// Second scenario: the indirect executes twice with different targets,
	// with enough distance between them for the resolve-time BTB insert to
	// land; the second execution hits the BTB with the stale first target.
	p2 := newProg(t, 0)
	p2.plains(3)
	p2.inst(isa.IndirectJump, 0) // index 3
	p2.plains(8)                 // indices 4..11
	// First target block at index 12: 12 plains then a jump back to 0.
	p2.plains(12)
	p2.inst(isa.Jump, 0) // index 24
	p2.plains(7)         // indices 25..31 (second target at index 28)
	img2 := p2.build()
	firstTgt := isa.Addr(12 * 4)
	secondTgt := isa.Addr(28 * 4)
	_ = t2
	recs2 := []trace.Record{
		{Start: 0, N: 4, BrKind: isa.IndirectJump, Taken: true, Target: firstTgt}, // BTB miss -> misfetch
		{Start: firstTgt, N: 13, BrKind: isa.Jump, Taken: true, Target: 0},
		{Start: 0, N: 4, BrKind: isa.IndirectJump, Taken: true, Target: secondTgt}, // stale BTB -> mispredict
		{Start: secondTgt, N: 4, BrKind: isa.Plain},
	}
	res2 := run(t, cfgWith(Oracle), img2, recs2)
	if got, want := res2.Events.BTBMispredicts, int64(1); got != want {
		t.Errorf("BTB mispredicts = %d, want %d", got, want)
	}
	if got, want := res2.Events.BTBMispredictSlots, Slots(16); got != want {
		t.Errorf("BTB mispredict slots = %d, want %d", got, want)
	}
}

// TestJumpBTBWarmup: a direct jump misfetches once and is then free.
func TestJumpBTBWarmup(t *testing.T) {
	p := newProg(t, 0)
	p.plains(3)
	p.inst(isa.Jump, 0)
	p.plains(4)
	img := p.build()

	const iters = 6
	recs := make([]trace.Record, iters)
	for i := range recs {
		recs[i] = trace.Record{Start: 0, N: 4, BrKind: isa.Jump, Taken: true, Target: 0}
	}
	res := run(t, cfgWith(Oracle), img, recs)
	if got, want := res.Events.BTBMisfetches, int64(1); got != want {
		t.Errorf("misfetches = %d, want %d", got, want)
	}
	if res.Events.PHTMispredicts != 0 || res.Events.BTBMispredicts != 0 {
		t.Errorf("unexpected mispredicts: %+v", res.Events)
	}
}
