package core

import (
	"reflect"
	"strings"
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// The adaptive differential suite. The meta-policy's boundary hook has two
// implementations — per-issued-instruction in the reference stepper, and
// interpolated inside bulk plain-issue regions in the skip-ahead core — and
// these tests hold them to bit-identity: equal Results, equal probe event
// streams, and (the strongest form) equal AdaptWindow digest sequences as
// observed by the chooser itself. Chooser strategies live in
// internal/adaptive (which imports this package), so the choosers here are
// test-local.

// pinnedChooser always answers one static policy — the differential anchor:
// an Adaptive run pinned to a policy must equal the static run exactly.
type pinnedChooser Policy

func (p pinnedChooser) First() Policy             { return Policy(p) }
func (p pinnedChooser) Decide(AdaptWindow) Policy { return Policy(p) }

// rotateChooser cycles deterministically through the static policies, one
// per window, guaranteeing switches land inside bulk regions.
type rotateChooser struct{ idx int }

func (r *rotateChooser) First() Policy { return Policies()[0] }
func (r *rotateChooser) Decide(AdaptWindow) Policy {
	r.idx++
	return Policies()[r.idx%len(Policies())]
}

// recordingChooser wraps another chooser and keeps every digest it was
// shown, so two runs can be compared window by window.
type recordingChooser struct {
	inner   Chooser
	windows []AdaptWindow
}

func (r *recordingChooser) First() Policy { return r.inner.First() }
func (r *recordingChooser) Decide(w AdaptWindow) Policy {
	r.windows = append(r.windows, w)
	return r.inner.Decide(w)
}

// TestAdaptivePinnedBitIdentity: for every static policy and both paper miss
// penalties, an Adaptive run with a pinned chooser must be bit-identical to
// the corresponding static run — Results (normalized on the Policy echo) and
// full probe event streams — in both step modes.
func TestAdaptivePinnedBitIdentity(t *testing.T) {
	t.Parallel()
	bench := synth.MustBuild(synth.GCC())
	for _, mode := range []StepMode{StepSkipAhead, StepReference} {
		for _, pen := range []int{5, 20} {
			for _, pol := range Policies() {
				static := DefaultConfig()
				static.Policy = pol
				static.MissPenalty = pen
				adapt := static
				adapt.Policy = Adaptive
				adapt.AdaptInterval = 1_000
				adapt.Chooser = pinnedChooser(pol)

				sres, sevs := runDiffMode(t, static, bench, 99, mode, nil, true, 3)
				ares, aevs := runDiffMode(t, adapt, bench, 99, mode, nil, true, 3)
				if ares.Policy != Adaptive {
					t.Fatalf("adaptive result echoes %v, want Adaptive", ares.Policy)
				}
				if ares.PolicySwitches != 0 {
					t.Errorf("pinned chooser switched %d times, want 0", ares.PolicySwitches)
				}
				ares.Policy = sres.Policy // the echo is the one legitimate difference
				if !reflect.DeepEqual(sres, ares) {
					t.Errorf("mode %v policy %v pen %d: pinned adaptive differs from static\nstatic:   %+v\nadaptive: %+v",
						mode, pol, pen, sres, ares)
				}
				if !reflect.DeepEqual(sevs, aevs) {
					t.Errorf("mode %v policy %v pen %d: event streams differ (static %d events, adaptive %d)",
						mode, pol, pen, len(sevs), len(aevs))
				}
			}
		}
	}
}

// adaptDiffRun executes one adaptive cell with a fresh recording chooser and
// returns the Result plus the digest sequence the chooser saw.
func adaptDiffRun(t *testing.T, cfg Config, bench *synth.Bench, seed uint64,
	mode StepMode, inner Chooser, record bool) (Result, []AdaptWindow) {
	t.Helper()
	rec := &recordingChooser{inner: inner}
	cfg.Chooser = rec
	res, _ := runDiffMode(t, cfg, bench, seed, mode, nil, record, 1)
	return res, rec.windows
}

// TestAdaptiveWindowDigestIdentity is the heart of the suite: a rotating
// chooser forces a policy switch every window, and the digests handed to the
// chooser — cycle spans interpolated mid-bulk-region in the skip-ahead core —
// must match the reference stepper's field for field, along with the final
// Results. Probe-less first (bulk fast path live), then with a full event
// recorder and a sampler co-prime to the adapt interval.
func TestAdaptiveWindowDigestIdentity(t *testing.T) {
	t.Parallel()
	for _, p := range []synth.Profile{synth.GCC(), synth.Su2cor(), synth.Fpppp()} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			bench := synth.MustBuild(p)
			for _, pen := range []int{5, 20} {
				cfg := DefaultConfig()
				cfg.Policy = Adaptive
				cfg.AdaptInterval = 512 // off the sampler grid, lands mid-bulk
				cfg.MissPenalty = pen

				ref, refWs := adaptDiffRun(t, cfg, bench, p.Seed, StepReference, &rotateChooser{}, false)
				fast, fastWs := adaptDiffRun(t, cfg, bench, p.Seed, StepSkipAhead, &rotateChooser{}, false)
				if ref.PolicySwitches == 0 {
					t.Fatalf("pen %d: rotating chooser recorded no switches; boundaries never fired", pen)
				}
				if len(refWs) < 10 {
					t.Fatalf("pen %d: only %d windows observed; adapt interval not exercised", pen, len(refWs))
				}
				if !reflect.DeepEqual(ref, fast) {
					t.Errorf("pen %d: Results differ\nreference: %+v\nskipahead: %+v", pen, ref, fast)
				}
				if !reflect.DeepEqual(refWs, fastWs) {
					for i := range refWs {
						if i >= len(fastWs) || !reflect.DeepEqual(refWs[i], fastWs[i]) {
							t.Errorf("pen %d: window digest %d differs\nreference: %+v\nskipahead: %+v",
								pen, i, refWs[i], fastWs[i])
							break
						}
					}
					if len(refWs) != len(fastWs) {
						t.Errorf("pen %d: window count differs: reference %d, skipahead %d",
							pen, len(refWs), len(fastWs))
					}
				}

				// Probed arm: stepped outer loop, sampler at 700 interleaving
				// with adapt boundaries at 512.
				cfg.SampleInterval = 700
				pref, prefWs := adaptDiffRun(t, cfg, bench, p.Seed, StepReference, &rotateChooser{}, true)
				pfast, pfastWs := adaptDiffRun(t, cfg, bench, p.Seed, StepSkipAhead, &rotateChooser{}, true)
				if !reflect.DeepEqual(pref, pfast) {
					t.Errorf("pen %d probed: Results differ\nreference: %+v\nskipahead: %+v", pen, pref, pfast)
				}
				if !reflect.DeepEqual(prefWs, pfastWs) {
					t.Errorf("pen %d probed: window digests differ", pen)
				}
				// Attaching a probe must not change what the chooser sees.
				if !reflect.DeepEqual(refWs, prefWs) {
					t.Errorf("pen %d: probe attachment changed the digest stream", pen)
				}
			}
		})
	}
}

// TestAdaptiveConfigErrors covers the validation surface added with the
// meta-policy.
func TestAdaptiveConfigErrors(t *testing.T) {
	t.Parallel()
	base := DefaultConfig()

	cfg := base
	cfg.Policy = Adaptive
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "adapt interval") {
		t.Errorf("adaptive without interval: got %v, want adapt-interval error", err)
	}
	cfg.AdaptInterval = -1
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "negative adapt interval") {
		t.Errorf("negative interval: got %v", err)
	}
	cfg = base
	cfg.Chooser = pinnedChooser(Oracle)
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "non-adaptive") {
		t.Errorf("chooser on static policy: got %v", err)
	}

	// NewEngine: adaptive without a chooser, and a chooser whose First() is
	// not static.
	bench := synth.MustBuild(synth.Su2cor())
	newEng := func(c Config) error {
		pred, _ := bpred.ByName("")
		rd := trace.NewLimitReader(bench.NewWalker(1), 1000)
		_, err := NewEngine(c, bench.Image(), rd, pred())
		return err
	}
	cfg = base
	cfg.Policy = Adaptive
	cfg.AdaptInterval = 100
	if err := newEng(cfg); err == nil || !strings.Contains(err.Error(), "Chooser") {
		t.Errorf("adaptive without chooser: got %v", err)
	}
	cfg.Chooser = pinnedChooser(Adaptive)
	if err := newEng(cfg); err == nil || !strings.Contains(err.Error(), "non-static") {
		t.Errorf("non-static First(): got %v", err)
	}
}

// TestAdaptiveDecideNonStaticPanics: a chooser returning the meta-policy
// from Decide is a programming error the engine refuses to mask.
func TestAdaptiveDecideNonStaticPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("Decide returning Adaptive did not panic")
		}
	}()
	bench := synth.MustBuild(synth.Su2cor())
	cfg := DefaultConfig()
	cfg.Policy = Adaptive
	cfg.AdaptInterval = 50
	cfg.MaxInsts = 5_000
	cfg.Chooser = badDecide{}
	pred, _ := bpred.ByName("")
	rd := trace.NewLimitReader(bench.NewWalker(1), 6_000)
	_, _ = Run(cfg, bench.Image(), rd, pred())
}

type badDecide struct{}

func (badDecide) First() Policy             { return Oracle }
func (badDecide) Decide(AdaptWindow) Policy { return Adaptive }

// TestParsePolicyAdaptive extends the name round-trip to the new member and
// pins the contract that chooser strategy names are not policies: they must
// be rejected with an error that lists the valid policy names.
func TestParsePolicyAdaptive(t *testing.T) {
	t.Parallel()
	for p := Policy(0); p < numPolicies; p++ {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if p, err := ParsePolicy("adaptive"); err != nil || p != Adaptive {
		t.Errorf(`ParsePolicy("adaptive") = %v, %v; want Adaptive`, p, err)
	}
	if Adaptive.IsStatic() {
		t.Errorf("Adaptive.IsStatic() = true")
	}
	for _, pol := range Policies() {
		if !pol.IsStatic() {
			t.Errorf("%v.IsStatic() = false", pol)
		}
	}
	for _, bad := range []string{"tournament", "ucb", "egreedy", "pinned:oracle"} {
		_, err := ParsePolicy(bad)
		if err == nil {
			t.Errorf("ParsePolicy(%q) accepted a strategy name", bad)
			continue
		}
		for _, want := range []string{"valid:", "oracle", "adaptive"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("ParsePolicy(%q) error %q does not mention %q", bad, err, want)
			}
		}
	}
}
