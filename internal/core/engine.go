package core

import (
	"errors"
	"fmt"
	"io"
	"math/bits"

	"specfetch/internal/bpred"
	"specfetch/internal/cache"
	"specfetch/internal/isa"
	"specfetch/internal/metrics"
	"specfetch/internal/obs"
	"specfetch/internal/program"
	"specfetch/internal/trace"
)

// Engine is one simulation instance. Build it with NewEngine and call Run
// once; engines are not reusable or safe for concurrent use.
type Engine struct {
	cfg  Config
	img  *program.Image
	pred bpred.Predictor
	rd   trace.Reader

	geom isa.LineGeom
	ic   *cache.ICache
	l2   *cache.ICache // optional second level (nil when disabled)
	bus  cache.Bus
	// busAccCy accumulates the cycles the bus spends transferring lines
	// (per-transfer latency, summed), feeding Snapshot.BusBusy so interval
	// collectors can difference occupancy without consuming bus events.
	busAccCy Cycles
	// resumeBufs hold wrong-path fills in flight (Resume policy); the paper
	// has exactly one, the MSHR extension several.
	resumeBufs []cache.LineBuffer
	// prefBufs hold prefetches in flight; one in the paper.
	prefBufs []cache.LineBuffer
	ras      *bpred.RAS // return-address stack (nil when disabled)

	cy          Cycles // current cycle
	lastIssueCy Cycles // last cycle in which correct-path instructions issued

	// condSlots holds the resolve cycles of in-flight correct-path
	// conditional branches (FIFO; times are monotone). condHead indexes the
	// oldest live entry: pops advance the head instead of re-slicing, so
	// the backing array is reused (and, once warm, never reallocated).
	condSlots []Cycles
	condHead  int
	// wrongConds counts wrong-path conditionals currently occupying
	// speculation slots; they are squashed when the window ends.
	wrongConds int

	// Delayed predictor updates, each FIFO with monotone times, with the
	// same head-index pop discipline as condSlots.
	btbQ        []btbUpdate
	btbHead     int
	resolveQ    []resolveUpdate
	resolveHead int
	// nextUpdAt caches the earliest pending delayed-update time (maxCycles
	// when both queues are drained), so the per-cycle pending check is one
	// compare instead of four loads. Enqueues lower it; applyUpdates
	// recomputes it exactly after popping.
	nextUpdAt Cycles

	// Trace cursor.
	cur       trace.Record
	curIdx    int
	haveRec   bool
	traceDone bool
	// trustRecs skips the per-record Validate when the reader vouches that
	// every record it will yield already passed it (trace.PreValidated).
	trustRecs bool

	// lastInstLine tracks the line of the most recently fetched
	// correct-path instruction, to identify structural line references.
	lastInstLine uint64
	haveLastLine bool

	// Per-cycle prefetch candidates: the branch-target candidate (higher
	// priority, TargetPrefetch extension) and the next-line candidate.
	prefCand        uint64
	prefCandValid   bool
	targetCand      uint64
	targetCandValid bool
	// Stream-prefetch state (StreamDepth extension): the next sequential
	// line to prefetch and how many remain in the current stream.
	streamNext uint64
	streamLeft int
	// nextFlushAt is the instruction count of the next context-switch
	// flush (FlushInterval extension).
	nextFlushAt int64

	// fastIssue gates the skip-ahead bulk plain-issue path: it requires
	// that no per-instruction observer can fire (no event probe, no access
	// callback, no prefetch engine consuming first-reference bits). A
	// sample-only probe (obs.SampleOnly) does not disqualify it: sampling
	// observes counters at instruction-count boundaries, and bulk deltas
	// are segmented at those boundaries by emitBulkSamples. The event-jump
	// stall and window accounting do not need the gate — they emit
	// byte-identical probe streams.
	fastIssue bool
	// wPow2/wShift/wMask precompute FetchWidth divisions for the bulk path;
	// a variable-divisor divide costs tens of machine cycles and bulkPlains
	// needs several per trace record.
	wPow2  bool
	wShift uint
	wMask  int
	// wayScratch holds the probed way of each line segment between
	// bulkPlains' residency pass and its effects pass, so each line is looked
	// up once. Reused across records (and across runs via the arena).
	wayScratch []cache.WayHandle
	// plainMemo, when non-nil, is the bulk-issue residency memo (see
	// plainBulkMemo). Enabled only direct-mapped under the fastIssue gate;
	// nil otherwise.
	plainMemo []plainBulkMemo

	// active is the static policy currently steering miss handling. It
	// equals cfg.Policy for static runs; under Adaptive it starts at the
	// chooser's First pick and is rewritten at every decision boundary.
	// Policy consultations in the engine read active, never cfg.Policy.
	active Policy
	// chooser, when non-nil, is consulted every cfg.AdaptInterval
	// correct-path instructions (Adaptive policy only).
	chooser   Chooser
	nextAdapt int64
	adaptIdx  int64
	// adaptPrev snapshots the counters at the last decision boundary, so
	// each AdaptWindow is a pure delta.
	adaptPrev adaptMark

	// probe receives instrumentation callbacks; nil disables them, and
	// every call site is guarded so the nil path costs one branch.
	probe obs.Probe
	// sampler, when non-nil, receives a counters snapshot every
	// nextSample instructions (and once at run end).
	sampler    obs.Sampler
	nextSample int64

	res Result
	err error
}

// maxCycles is a sentinel beyond any reachable simulation time.
const maxCycles = Cycles(1) << 62

// adaptMark is the counter snapshot at an adaptive decision boundary.
type adaptMark struct {
	insts int64
	cy    Cycles
	lost  metrics.Breakdown
	acc   int64
	miss  int64
	busCy Cycles
}

// btbUpdate is a decode-time speculative BTB insertion.
type btbUpdate struct {
	at     Cycles
	pc     isa.Addr
	target isa.Addr
}

// resolveUpdate trains the predictor when a correct-path branch resolves.
type resolveUpdate struct {
	at       Cycles
	pc       isa.Addr
	taken    bool
	indirect bool
	target   isa.Addr // actual target, for indirect updates
}

// NewEngine builds a simulation over the given static image, dynamic trace,
// and branch predictor. The predictor must be freshly constructed: the
// engine trains it as the run progresses.
func NewEngine(cfg Config, img *program.Image, rd trace.Reader, pred bpred.Predictor) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if img == nil {
		return nil, errors.New("core: nil program image")
	}
	if rd == nil {
		return nil, errors.New("core: nil trace reader")
	}
	if pred == nil {
		return nil, errors.New("core: nil predictor")
	}
	e := &Engine{
		cfg:  cfg,
		img:  img,
		pred: pred,
		rd:   rd,
		geom: isa.LineGeom{LineBytes: cfg.ICache.LineBytes},
	}
	e.res.Policy = cfg.Policy
	e.active = cfg.Policy
	if cfg.Policy == Adaptive {
		if cfg.Chooser == nil {
			return nil, errors.New("core: adaptive policy requires a Chooser (build one from Config.AdaptStrategy via internal/adaptive)")
		}
		e.chooser = cfg.Chooser
		first := e.chooser.First()
		if !first.IsStatic() {
			return nil, fmt.Errorf("core: chooser First() returned non-static policy %v", first)
		}
		e.active = first
		e.nextAdapt = cfg.AdaptInterval
	}
	e.lastIssueCy = -Cycles(cfg.DecodeLatency) // nothing pending at t=0
	e.nextUpdAt = maxCycles
	if cfg.RASDepth > 0 {
		e.ras = bpred.NewRAS(cfg.RASDepth)
	}
	nbuf := 1
	if cfg.MSHRs > 0 {
		nbuf = cfg.MSHRs
	}
	if cfg.Arena != nil {
		if err := cfg.Arena.acquire(e, nbuf); err != nil {
			return nil, err
		}
	} else {
		ic, err := cache.New(cfg.ICache)
		if err != nil {
			return nil, err
		}
		e.ic = ic
		if cfg.L2 != nil {
			l2, err := cache.New(*cfg.L2)
			if err != nil {
				return nil, err
			}
			e.l2 = l2
		}
		e.resumeBufs = make([]cache.LineBuffer, nbuf)
		e.prefBufs = make([]cache.LineBuffer, nbuf)
	}
	if cfg.Probe != nil {
		if s, ok := cfg.Probe.(obs.Sampler); ok && cfg.SampleInterval > 0 {
			e.sampler = s
			e.nextSample = cfg.SampleInterval
		}
		// A sample-only probe promises to ignore every per-event callback,
		// so the engine does not carry it as e.probe at all: event emission
		// stays disabled and — below — the skip-ahead bulk path stays
		// eligible, with bulk deltas segmented at sample boundaries.
		if !obs.IsSampleOnly(cfg.Probe) {
			e.probe = cfg.Probe
		}
	}
	e.fastIssue = cfg.StepMode == StepSkipAhead && e.probe == nil &&
		cfg.OnRightPathAccess == nil && !e.prefetchOn()
	if pv, ok := rd.(trace.PreValidated); ok && pv.PreValidatedTrace() {
		e.trustRecs = true
	}
	if w := cfg.FetchWidth; w&(w-1) == 0 {
		e.wPow2 = true
		e.wShift = uint(bits.TrailingZeros64(uint64(w)))
		e.wMask = w - 1
	}
	if e.fastIssue && cfg.ICache.Assoc == 1 {
		if cfg.Arena != nil {
			e.plainMemo = cfg.Arena.takeMemo(e.ic, cfg.FetchWidth)
		} else {
			e.plainMemo = make([]plainBulkMemo, 1<<plainMemoBits)
		}
	}
	return e, nil
}

// Run executes the simulation to trace end or the instruction budget and
// returns the measurements.
func Run(cfg Config, img *program.Image, rd trace.Reader, pred bpred.Predictor) (Result, error) {
	e, err := NewEngine(cfg, img, rd, pred)
	if err != nil {
		return Result{}, err
	}
	return e.Run()
}

// Run drives the simulation loop.
func (e *Engine) Run() (Result, error) {
	if e.cfg.Arena != nil {
		// The borrowed storage goes back to the arena (with whatever
		// capacity this run grew) on every exit path.
		defer e.cfg.Arena.release(e)
	}
	e.loadRecord()
	clean := true
	if e.fastIssue {
		clean = e.runFast()
	} else {
		clean = e.runStepped()
	}
	if !clean {
		// An error surfaced mid-step: return exactly what the reference
		// stepper returns there (counters as-is, Cycles unset).
		return e.res, e.err
	}
	e.res.Cycles = e.cy
	if e.sampler != nil {
		// Close the series on the exact final counters so cumulative
		// values match the returned Result.
		e.emitSample(e.res.Cycles)
	}
	// A trace error on the very first (or a boundary) record ends the loop
	// without passing through stepCycle's error check.
	return e.res, e.err
}

// runStepped is the outer loop shared by the reference stepper and the
// probe-observed skip-ahead path: one stepCycle per iteration, with delayed
// predictor updates applied first. It reports false when an error surfaced
// mid-step (as opposed to the loop ending at done()).
func (e *Engine) runStepped() bool {
	for !e.done() {
		e.applyUpdates(e.cy)
		if e.probe == nil {
			e.stepCycle()
		} else {
			cy, insts0 := e.cy, e.res.Insts
			e.stepCycle()
			e.probe.FetchCycle(cy, int(e.res.Insts-insts0))
		}
		if e.err != nil {
			return false
		}
	}
	return true
}

// runFast is the skip-ahead outer loop: whole cycles of plain instructions
// over resident lines are issued in bulk, and everything else falls back to
// the normal stepper (whose stalls and windows themselves jump in
// skip-ahead mode). Delayed predictor updates are applied lazily — they are
// monotone pops only observable at predictor queries, which happen only
// inside stepCycle — so the predictor sees the exact update/query order the
// reference stepper produces.
func (e *Engine) runFast() bool {
	for !e.done() {
		if e.bulkPlains() {
			if e.err != nil {
				return false
			}
			continue
		}
		if e.updatesPending(e.cy) {
			e.applyUpdates(e.cy)
		}
		e.stepCycle()
		if e.err != nil {
			return false
		}
	}
	return true
}

// emitSample delivers a cumulative-counters snapshot to the sampler.
func (e *Engine) emitSample(cy Cycles) {
	if e.sampler == nil {
		return
	}
	e.sampler.Sample(obs.Snapshot{
		Cycle:             cy,
		Insts:             e.res.Insts,
		Lost:              e.res.Lost,
		RightPathAccesses: e.res.RightPathAccesses,
		RightPathMisses:   e.res.RightPathMisses,
		BusTransfers:      e.bus.Transfers,
		BusBusy:           e.busAccCy,
	})
}

func (e *Engine) done() bool {
	if e.traceDone && !e.haveRec {
		return true
	}
	return e.cfg.MaxInsts > 0 && e.res.Insts >= e.cfg.MaxInsts
}

// loadRecord advances the trace cursor to the next record.
func (e *Engine) loadRecord() {
	rec, err := e.rd.Next()
	if err != nil {
		e.haveRec = false
		e.traceDone = true
		if !errors.Is(err, io.EOF) {
			e.err = fmt.Errorf("core: reading trace: %w", err)
		}
		return
	}
	if !e.trustRecs {
		if verr := rec.Validate(); verr != nil {
			e.haveRec = false
			e.traceDone = true
			e.err = verr
			return
		}
	}
	e.cur = rec
	e.curIdx = 0
	e.haveRec = true
}

// instInfo describes the next correct-path instruction.
type instInfo struct {
	pc     isa.Addr
	kind   isa.Kind
	taken  bool
	target isa.Addr
}

// peekInst returns the next correct-path instruction without consuming it.
// It must only be called when !e.done().
func (e *Engine) peekInst() instInfo {
	pc := e.cur.Start.Plus(e.curIdx)
	if e.curIdx == e.cur.N-1 && e.cur.BrKind != isa.Plain {
		return instInfo{pc: pc, kind: e.cur.BrKind, taken: e.cur.Taken, target: e.cur.Target}
	}
	return instInfo{pc: pc, kind: isa.Plain}
}

// consumeInst advances past the instruction peekInst reported.
func (e *Engine) consumeInst() {
	e.curIdx++
	if e.curIdx >= e.cur.N {
		e.loadRecord()
	}
}

// applyUpdates replays delayed predictor updates whose time has come, in
// time order, so predictions at cycle `now` see exactly the state a real
// machine would have. Pops advance the head indexes; a drained queue
// resets to the front of its backing array, which is therefore reused
// instead of regrown (the old slice[1:] pop made every future append
// reallocate).
// updatesPending reports whether any delayed update is due at `now`. It is
// small enough to inline, so hot loops use it to skip the applyUpdates call
// (a pure no-op then: drained queues were already reset by the call that
// drained them).
func (e *Engine) updatesPending(now Cycles) bool {
	return e.nextUpdAt <= now
}

// queueBTB/queueResolve enqueue delayed predictor updates, keeping the
// earliest-pending cache coherent. Times within each queue are monotone, so
// a new entry can only lower nextUpdAt when its queue was drained.
func (e *Engine) queueBTB(u btbUpdate) {
	if u.at < e.nextUpdAt {
		e.nextUpdAt = u.at
	}
	e.btbQ = append(e.btbQ, u)
}

func (e *Engine) queueResolve(u resolveUpdate) {
	if u.at < e.nextUpdAt {
		e.nextUpdAt = u.at
	}
	e.resolveQ = append(e.resolveQ, u)
}

func (e *Engine) applyUpdates(now Cycles) {
	for {
		bOK := e.btbHead < len(e.btbQ) && e.btbQ[e.btbHead].at <= now
		rOK := e.resolveHead < len(e.resolveQ) && e.resolveQ[e.resolveHead].at <= now
		if !bOK && !rOK {
			break
		}
		if bOK && (!rOK || e.btbQ[e.btbHead].at <= e.resolveQ[e.resolveHead].at) {
			u := e.btbQ[e.btbHead]
			e.btbHead++
			e.pred.DecodeTaken(u.pc, u.target)
		} else {
			u := e.resolveQ[e.resolveHead]
			e.resolveHead++
			if u.indirect {
				e.pred.ResolveIndirect(u.pc, u.target)
			} else {
				e.pred.ResolveCond(u.pc, u.taken)
			}
		}
	}
	if e.btbHead > 0 && e.btbHead == len(e.btbQ) {
		e.btbQ = e.btbQ[:0]
		e.btbHead = 0
	}
	if e.resolveHead > 0 && e.resolveHead == len(e.resolveQ) {
		e.resolveQ = e.resolveQ[:0]
		e.resolveHead = 0
	}
	next := maxCycles
	if e.btbHead < len(e.btbQ) {
		next = e.btbQ[e.btbHead].at
	}
	if e.resolveHead < len(e.resolveQ) && e.resolveQ[e.resolveHead].at < next {
		next = e.resolveQ[e.resolveHead].at
	}
	e.nextUpdAt = next
}

// prefetchOn reports whether any prefetch engine is configured.
func (e *Engine) prefetchOn() bool {
	return e.cfg.NextLinePrefetch || e.cfg.TargetPrefetch || e.cfg.StreamDepth > 0
}

// fillLatency returns the fill time for line, consulting (and updating)
// the optional second-level cache.
func (e *Engine) fillLatency(line uint64) int {
	if e.l2 == nil {
		return e.cfg.MissPenalty
	}
	if e.l2.Access(line) {
		e.res.Traffic.L2Hits++
		return e.cfg.L2Latency
	}
	e.l2.Fill(line)
	e.res.Traffic.L2Misses++
	return e.cfg.MissPenalty
}

// busStartLine begins the transfer of line no earlier than `at` and
// returns its completion cycle, honouring the L2 hierarchy and the
// pipelined-memory extension. haveLine=false skips the L2 consultation
// (full memory latency). kind labels the transfer for the probe.
func (e *Engine) busStartLine(at Cycles, line uint64, haveLine bool, kind obs.FillKind) Cycles {
	lat := e.cfg.MissPenalty
	if haveLine {
		lat = e.fillLatency(line)
	}
	var start, done Cycles
	if e.cfg.PipelinedMemory {
		e.bus.Transfers++
		start, done = at, at+Cycles(lat)
	} else {
		start = at
		if f := e.bus.FreeAt(); f > start {
			start = f
		}
		done = e.bus.Start(at, lat)
	}
	e.busAccCy += done - start
	if e.probe != nil {
		e.probe.BusAcquire(start, line, kind)
		e.probe.BusRelease(done)
	}
	return done
}

// busFreeAt returns when a new transfer may start.
func (e *Engine) busFreeAt() Cycles {
	if e.cfg.PipelinedMemory {
		return 0
	}
	return e.bus.FreeAt()
}

// busBusy reports whether a new transfer must wait at cycle now.
func (e *Engine) busBusy(now Cycles) bool {
	if e.cfg.PipelinedMemory {
		return false
	}
	return e.bus.Busy(now)
}

// armTargetPrefetch records a branch-target prefetch candidate.
func (e *Engine) armTargetPrefetch(target isa.Addr) {
	e.targetCand = e.geom.Line(target)
	e.targetCandValid = true
}

// retireConds frees speculation slots whose branches have resolved by now.
func (e *Engine) retireConds(now Cycles) {
	for e.condHead < len(e.condSlots) && e.condSlots[e.condHead] <= now {
		e.condHead++
	}
	if e.condHead == len(e.condSlots) {
		e.condSlots = e.condSlots[:0]
		e.condHead = 0
	}
}

// condCount returns the number of in-flight correct-path conditionals.
func (e *Engine) condCount() int { return len(e.condSlots) - e.condHead }

// chargePhase describes one attribution interval of a stall: dead cycles
// strictly before `until` belong to `comp`.
type chargePhase struct {
	until Cycles
	comp  metrics.Component
}

// chargeStall accounts a stall: the current cycle e.cy issued slotsIssued
// useful instructions (its remaining slots are lost), cycles up to
// resumeAt-1 are fully lost, and fetch restarts at resumeAt. Each dead cycle
// is attributed to the first phase whose `until` exceeds it; the final
// phase's until must be >= resumeAt. In skip-ahead mode the accounting is
// done per interval (chargeStallJump); the per-cycle loop below is the
// reference it is verified against.
func (e *Engine) chargeStall(slotsIssued int, phases []chargePhase, resumeAt Cycles) {
	if e.cfg.StepMode == StepSkipAhead {
		e.chargeStallJump(slotsIssued, phases, resumeAt)
		return
	}
	w := Slots(e.cfg.FetchWidth)
	for c := e.cy; c < resumeAt; c++ {
		lost := w
		if c == e.cy {
			lost = w - Slots(slotsIssued)
		}
		comp := phases[len(phases)-1].comp
		for _, p := range phases {
			if c < p.until {
				comp = p.comp
				break
			}
		}
		e.res.Lost.Add(comp, lost)
	}
	if e.probe != nil {
		e.emitStallSegments(slotsIssued, phases, resumeAt)
	}
	e.cy = resumeAt
}

// emitStallSegments replays a stall's attribution as contiguous
// per-component probe segments (called only when a probe is attached).
func (e *Engine) emitStallSegments(slotsIssued int, phases []chargePhase, resumeAt Cycles) {
	if e.probe == nil {
		return
	}
	w := Slots(e.cfg.FetchWidth)
	segStart := e.cy
	var segComp metrics.Component
	var segSlots Slots
	haveSeg := false
	for c := e.cy; c < resumeAt; c++ {
		lost := w
		if c == e.cy {
			lost = w - Slots(slotsIssued)
		}
		comp := phases[len(phases)-1].comp
		for _, p := range phases {
			if c < p.until {
				comp = p.comp
				break
			}
		}
		if haveSeg && comp != segComp {
			e.probe.Stall(segStart, c, segComp, segSlots)
			segStart, segSlots = c, 0
		}
		segComp, haveSeg = comp, true
		segSlots += lost
	}
	if haveSeg {
		e.probe.Stall(segStart, resumeAt, segComp, segSlots)
	}
}

// lookupKind distinguishes what satisfied (or will satisfy) a line access.
type lookupKind int

const (
	lookupHit         lookupKind = iota
	lookupPendingFill            // the needed line is being filled right now
	lookupMiss
)

// lineLookup checks residency of line at cycle `now`, counting buffers whose
// fills have completed as resident (and committing them, as the paper writes
// buffered lines back at the next opportunity). When the needed line is in
// flight it returns lookupPendingFill with the completion time.
func (e *Engine) lineLookup(line uint64, now Cycles) (lookupKind, Cycles) {
	if e.ic.Access(line) {
		return lookupHit, 0
	}
	for _, bufs := range [2][]cache.LineBuffer{e.resumeBufs, e.prefBufs} {
		for i := range bufs {
			b := &bufs[i]
			if !b.Valid() || b.Line() != line {
				continue
			}
			if b.Ready(line, now) {
				b.CommitTo(e.ic, now)
				return lookupHit, 0
			}
			return lookupPendingFill, b.ReadyAt()
		}
	}
	return lookupMiss, 0
}

// commitCompletedBuffers writes any finished buffered fills into the cache
// array; the paper does this at the next I-cache miss.
func (e *Engine) commitCompletedBuffers(now Cycles) {
	for _, bufs := range [2][]cache.LineBuffer{e.resumeBufs, e.prefBufs} {
		for i := range bufs {
			if b := &bufs[i]; b.Valid() && now >= b.ReadyAt() {
				b.CommitTo(e.ic, now)
			}
		}
	}
}

// bufferedLine reports whether any fill buffer currently tracks line.
func (e *Engine) bufferedLine(line uint64) bool {
	for _, bufs := range [2][]cache.LineBuffer{e.resumeBufs, e.prefBufs} {
		for i := range bufs {
			if b := &bufs[i]; b.Valid() && b.Line() == line {
				return true
			}
		}
	}
	return false
}

// freeBuffer finds a usable buffer in bufs: an invalid one, or one whose
// fill completed (which is committed first). It returns nil when all are
// still in flight.
func (e *Engine) freeBuffer(bufs []cache.LineBuffer, now Cycles) *cache.LineBuffer {
	for i := range bufs {
		if !bufs[i].Valid() {
			return &bufs[i]
		}
	}
	for i := range bufs {
		if now >= bufs[i].ReadyAt() {
			bufs[i].CommitTo(e.ic, now)
			return &bufs[i]
		}
	}
	return nil
}

// stepCycle simulates one fetch cycle (and any stall it runs into),
// advancing e.cy past everything it accounted for.
func (e *Engine) stepCycle() {
	width := e.cfg.FetchWidth
	e.retireConds(e.cy)
	e.prefCandValid = false
	e.targetCandValid = false
	if e.cfg.FlushInterval > 0 && e.res.Insts >= e.nextFlushAt {
		if e.nextFlushAt > 0 {
			e.ic.InvalidateAll()
		}
		e.nextFlushAt = e.res.Insts + e.cfg.FlushInterval
	}

	var groupLine uint64
	groupLineValid := false

	for slot := 0; slot < width; slot++ {
		if e.done() {
			e.finishCycle()
			return
		}
		in := e.peekInst()
		line := e.geom.Line(in.pc)

		if !groupLineValid || line != groupLine {
			// A structural reference is the instruction stream crossing into
			// a new line. It is counted exactly once per crossing — even if
			// a miss or stall forces the fetch to retry the same line next
			// cycle — so the reference sequence is policy independent and
			// classification can match runs up.
			structural := !e.haveLastLine || line != e.lastInstLine
			kind, readyAt := e.lineLookup(line, e.cy)
			if structural {
				e.lastInstLine = line
				e.haveLastLine = true
				e.res.RightPathAccesses++
				miss := kind == lookupMiss
				if miss {
					e.res.RightPathMisses++
				}
				if e.cfg.OnRightPathAccess != nil {
					e.cfg.OnRightPathAccess(e.res.RightPathAccesses-1, line, miss)
				}
			} else if kind == lookupMiss {
				e.res.ReentryMisses++
			}
			switch kind {
			case lookupPendingFill:
				// The needed line is already on its way (wrong-path fill in
				// the resume buffer, or a prefetch). Wait for it: a bus-class
				// penalty in the paper's accounting.
				e.chargeStall(slot, []chargePhase{{until: readyAt, comp: metrics.Bus}}, readyAt)
				e.tryPrefetch(e.cy)
				return
			case lookupMiss:
				e.handleRightPathMiss(line, slot)
				return
			case lookupHit:
				// Fall out of the switch to the hit path below.
			}
			// Hit: maybe arm the next-line prefetcher.
			if e.cfg.NextLinePrefetch && e.ic.ConsumeFirstRef(line) {
				e.prefCand = line + 1
				e.prefCandValid = true
			}
			groupLine = line
			groupLineValid = true
		}

		if in.kind.IsConditional() && e.condCount()+e.wrongConds >= e.cfg.MaxUnresolved {
			// Speculation limit: stall until the oldest branch resolves.
			resumeAt := e.cy + 1
			if e.condCount() > 0 {
				resumeAt = e.condSlots[e.condHead]
			}
			if resumeAt <= e.cy {
				resumeAt = e.cy + 1
			}
			e.tryPrefetch(e.cy)
			e.chargeStall(slot, []chargePhase{{until: resumeAt, comp: metrics.BranchFull}}, resumeAt)
			return
		}

		// Issue the instruction.
		e.res.Insts++
		e.lastIssueCy = e.cy
		if e.sampler != nil && e.res.Insts >= e.nextSample {
			e.emitSample(e.cy)
			e.nextSample += e.cfg.SampleInterval
		}
		if e.chooser != nil && e.res.Insts >= e.nextAdapt {
			e.adaptAt(e.cy, e.res.Insts, e.res.RightPathAccesses)
		}
		e.consumeInst()

		if in.kind.IsBranch() {
			if e.handleBranch(in, slot+1) {
				return // redirect window consumed the rest of the cycle
			}
			// Correctly predicted: the group continues at the new PC, which
			// may be on a different line; the loop re-checks residency.
			groupLineValid = false
			continue
		}
	}
	e.finishCycle()
}

// finishCycle issues a pending prefetch and advances to the next cycle.
func (e *Engine) finishCycle() {
	e.tryPrefetch(e.cy)
	e.cy++
}

// tryPrefetch issues at most one prefetch per cycle under the paper's
// conditions (candidate absent, bus free, previously prefetched line
// committed first). Candidates are considered in priority order: branch
// target (TargetPrefetch extension), next line (the paper's policy), then
// the sequential stream (StreamDepth extension).
func (e *Engine) tryPrefetch(now Cycles) {
	if !e.prefetchOn() {
		return
	}
	var cands [3]uint64
	n := 0
	streamIdx := -1
	if e.targetCandValid {
		cands[n] = e.targetCand
		n++
		e.targetCandValid = false
	}
	if e.prefCandValid {
		cands[n] = e.prefCand
		n++
		e.prefCandValid = false
	}
	if e.streamLeft > 0 {
		streamIdx = n
		cands[n] = e.streamNext
		n++
	}
	if n == 0 {
		return
	}
	buf := e.freeBuffer(e.prefBufs, now)
	if buf == nil {
		return // every prefetch buffer still in flight (bus busy anyway)
	}
	if e.busBusy(now) {
		return
	}
	for i := 0; i < n; i++ {
		cand := cands[i]
		if e.ic.Probe(cand) || e.bufferedLine(cand) {
			if i == streamIdx {
				// Skip past already-present stream lines.
				e.streamNext++
				e.streamLeft--
			}
			continue
		}
		done := e.busStartLine(now, cand, true, obs.FillPrefetch)
		buf.Set(cand, done)
		e.res.Traffic.PrefetchFills++
		if e.probe != nil {
			e.probe.Prefetch(now, cand, done)
			e.probe.FillComplete(done, cand, obs.FillPrefetch)
		}
		if i == streamIdx {
			e.streamNext++
			e.streamLeft--
		}
		return
	}
}

// adaptAt fires one Adaptive decision boundary: it digests the window that
// just closed (ending at the boundary instruction's cycle/instruction/access
// coordinates — interpolated by the caller when the boundary fell inside a
// bulk-issued region) and installs the chooser's pick as the active policy.
// Lost, miss, and bus counters come straight from e.res: inside a bulk
// region they cannot have moved since the boundary, and outside one they are
// exact.
func (e *Engine) adaptAt(cy Cycles, insts, acc int64) {
	var lost metrics.Breakdown
	for i := range lost {
		lost[i] = e.res.Lost[i] - e.adaptPrev.lost[i]
	}
	next := e.chooser.Decide(AdaptWindow{
		Index:      e.adaptIdx,
		StartInsts: e.adaptPrev.insts,
		EndInsts:   insts,
		Cycles:     cy - e.adaptPrev.cy,
		Lost:       lost,
		Accesses:   acc - e.adaptPrev.acc,
		Misses:     e.res.RightPathMisses - e.adaptPrev.miss,
		BusBusy:    e.busAccCy - e.adaptPrev.busCy,
		Active:     e.active,
	})
	if !next.IsStatic() {
		panic(fmt.Sprintf("core: chooser Decide() returned non-static policy %v", next))
	}
	if next != e.active {
		e.active = next
		e.res.PolicySwitches++
	}
	e.adaptIdx++
	e.adaptPrev = adaptMark{
		insts: insts,
		cy:    cy,
		lost:  e.res.Lost,
		acc:   acc,
		miss:  e.res.RightPathMisses,
		busCy: e.busAccCy,
	}
	e.nextAdapt += e.cfg.AdaptInterval
}

// handleRightPathMiss models a demand miss on the correct path at the
// current cycle, after slotsIssued instructions already issued this cycle.
func (e *Engine) handleRightPathMiss(line uint64, slotsIssued int) {
	now := e.cy
	if e.probe != nil {
		e.probe.MissStart(now, line, false)
	}

	// Policy gating before the fill may start.
	gate := now
	switch e.active {
	case Pessimistic:
		if g := e.lastIssueCy + Cycles(e.cfg.DecodeLatency); g > gate {
			gate = g
		}
		if n := len(e.condSlots); n > e.condHead && e.condSlots[n-1] > gate {
			gate = e.condSlots[n-1]
		}
	case Decode:
		if g := e.lastIssueCy + Cycles(e.cfg.DecodeLatency); g > gate {
			gate = g
		}
	case Oracle, Optimistic, Resume:
		// No gate: the fill starts as soon as the bus allows.
	case Adaptive:
		// Unreachable: the engine resolves Adaptive to a static active
		// policy at construction and every boundary.
		panic("core: adaptive meta-policy leaked into miss handling")
	}

	fillStart := gate
	if f := e.busFreeAt(); f > fillStart {
		fillStart = f
	}
	fillDone := e.busStartLine(fillStart, line, true, obs.FillDemand)
	if e.probe != nil {
		e.probe.FillComplete(fillDone, line, obs.FillDemand)
	}

	// The stream-prefetch extension re-arms on every right-path demand
	// fill, like a stream buffer allocated on a miss.
	if e.cfg.StreamDepth > 0 {
		e.streamNext = line + 1
		e.streamLeft = e.cfg.StreamDepth
	}

	// The paper writes buffered lines into the array at the next miss.
	e.commitCompletedBuffers(now)
	e.ic.Fill(line)
	e.res.Traffic.DemandFills++

	e.chargeStall(slotsIssued, []chargePhase{
		{until: gate, comp: metrics.ForceResolve},
		{until: fillStart, comp: metrics.Bus},
		{until: fillDone, comp: metrics.RTICache},
	}, fillDone)
}

// eventClass labels a redirect for Table 3 accounting.
type eventClass int

const (
	evPHTMispredict eventClass = iota
	evBTBMisfetch
	evBTBMispredict
)

// redirectKind maps the Table 3 event class onto the probe vocabulary.
func (ev eventClass) redirectKind() obs.RedirectKind {
	switch ev {
	case evPHTMispredict:
		return obs.RedirectPHTMispredict
	case evBTBMisfetch:
		return obs.RedirectBTBMisfetch
	default:
		return obs.RedirectBTBMispredict
	}
}

// handleBranch processes a just-issued correct-path branch. slotsIssued is
// the number of instructions issued this cycle including the branch. It
// returns true when a redirect window consumed the rest of the cycle.
func (e *Engine) handleBranch(in instInfo, slotsIssued int) bool {
	e.res.Branches++
	now := e.cy
	fallThrough := in.pc.Next()
	decodeAt := now + Cycles(e.cfg.DecodeLatency)
	resolveAt := now + 1 + Cycles(e.cfg.ResolveLatency)

	predTarget, btbHit := e.pred.PredictTarget(in.pc)

	if in.kind.IsConditional() {
		e.res.CondBranches++
		e.condSlots = append(e.condSlots, resolveAt)
		e.queueResolve(resolveUpdate{at: resolveAt, pc: in.pc, taken: in.taken})
		predTaken := e.pred.PredictCond(in.pc)
		staticTarget := e.img.At(in.pc).Target
		if e.probe != nil {
			e.probe.BranchResolve(resolveAt, uint64(in.pc), in.taken, predTaken != in.taken)
		}
		if e.cfg.TargetPrefetch {
			e.armTargetPrefetch(staticTarget)
		}
		if predTaken {
			// Decode-time speculative BTB insert of the (computed) target.
			e.queueBTB(btbUpdate{at: decodeAt, pc: in.pc, target: staticTarget})
		}
		switch {
		case predTaken == in.taken && !predTaken:
			return false // correctly predicted fall-through
		case predTaken == in.taken && btbHit:
			return false // correctly predicted taken with target available
		case predTaken && in.taken && !btbHit:
			// Right direction, no target: misfetch. Fall-through is fetched
			// until decode computes the target.
			e.runWindow(slotsIssued, evBTBMisfetch, []wpPhase{
				{start: fallThrough, until: now + 1 + Cycles(e.cfg.DecodeLatency), misfetch: true},
			}, in.target)
			return true
		case predTaken && !in.taken && btbHit:
			// Wrong direction: fetch runs down the taken target until resolve.
			e.runWindow(slotsIssued, evPHTMispredict, []wpPhase{
				{start: predTarget, until: now + 1 + Cycles(e.cfg.ResolveLatency)},
			}, fallThrough)
			return true
		case predTaken && !in.taken && !btbHit:
			// Wrong direction and no target: sequential fetch until decode
			// computes the target, then down the (wrong) taken path until
			// resolve.
			e.runWindow(slotsIssued, evPHTMispredict, []wpPhase{
				{start: fallThrough, until: now + 1 + Cycles(e.cfg.DecodeLatency), misfetch: true},
				{start: staticTarget, until: now + 1 + Cycles(e.cfg.ResolveLatency)},
			}, fallThrough)
			return true
		default:
			// Predicted fall-through, actually taken: classic mispredict.
			e.runWindow(slotsIssued, evPHTMispredict, []wpPhase{
				{start: fallThrough, until: now + 1 + Cycles(e.cfg.ResolveLatency)},
			}, in.target)
			return true
		}
	}

	// Unconditional transfers: always taken.
	if in.kind.IsIndirect() {
		e.queueResolve(resolveUpdate{
			at: resolveAt, pc: in.pc, indirect: true, target: in.target, taken: true,
		})
		if e.cfg.TargetPrefetch && btbHit {
			e.armTargetPrefetch(predTarget)
		}
		if e.ras != nil {
			if in.kind == isa.IndirectCall {
				e.ras.Push(fallThrough)
			}
			if in.kind == isa.Return {
				// The RAS prediction replaces the BTB target. Whether the
				// instruction is identified as a branch at fetch time still
				// depends on the BTB (predecode identification); on a BTB
				// miss the misfetch path below applies regardless.
				if ret, ok := e.ras.Pop(); ok {
					predTarget = ret
				}
			}
		}
		if e.probe != nil {
			e.probe.BranchResolve(resolveAt, uint64(in.pc), true, !(btbHit && predTarget == in.target))
		}
		switch {
		case btbHit && predTarget == in.target:
			return false
		case btbHit:
			// Stale target: fetch runs down the old target until resolve.
			e.runWindow(slotsIssued, evBTBMispredict, []wpPhase{
				{start: predTarget, until: now + 1 + Cycles(e.cfg.ResolveLatency)},
			}, in.target)
			return true
		default:
			// Not identified as a branch: sequential fetch until decode.
			e.runWindow(slotsIssued, evBTBMisfetch, []wpPhase{
				{start: fallThrough, until: now + 1 + Cycles(e.cfg.DecodeLatency), misfetch: true},
			}, in.target)
			return true
		}
	}

	// Direct unconditional (jump/call).
	e.queueBTB(btbUpdate{at: decodeAt, pc: in.pc, target: in.target})
	if e.cfg.TargetPrefetch {
		e.armTargetPrefetch(in.target)
	}
	if e.ras != nil && in.kind == isa.Call {
		e.ras.Push(fallThrough)
	}
	if btbHit {
		return false
	}
	e.runWindow(slotsIssued, evBTBMisfetch, []wpPhase{
		{start: fallThrough, until: now + 1 + Cycles(e.cfg.DecodeLatency), misfetch: true},
	}, in.target)
	return true
}
