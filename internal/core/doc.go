// Package core — timing-model specification.
//
// This file documents the exact cycle semantics the engine implements (and
// the directed tests in engine_test.go pin down). It exists so the model
// can be audited against the paper without reading the simulation loop.
//
// # Fetch
//
// Time advances in cycles. In a non-stalled cycle the fetch unit issues up
// to FetchWidth sequential correct-path instructions, crossing line
// boundaries and correctly-predicted taken branches freely (the paper
// assumes no alignment losses, so a correctly predicted branch costs
// nothing). Fetching from a line requires it to be resident: in the cache
// array, or complete in the resume/prefetch buffers (completed buffered
// lines are written back lazily, at the next miss or reuse, as in the
// paper).
//
// # Branches
//
// A branch fetched in cycle t is decoded at t+DecodeLatency and, if
// conditional, resolved at t+1+ResolveLatency; it occupies one of the
// MaxUnresolved speculation slots from fetch until resolution. Fetching a
// conditional with all slots full stalls fetch until the oldest resolves
// (charged branch_full).
//
// Prediction uses the Predictor exactly as hardware would: the BTB
// identifies branches and supplies targets at fetch; the PHT predicts
// conditional directions; BTB insertions happen speculatively at decode
// (t+DecodeLatency, wrong-path decodes included); PHT counters and the
// global history update only at resolution of correct-path branches —
// wrong-path branches are squashed unresolved. All delayed updates are
// applied in time order before each cycle's predictions, so deep
// speculation sees stale history (the paper's Table 3 B1-vs-B4 effect).
//
// # Redirects
//
// Mispredicted or misfetched branches open a redirect window of dead
// cycles, charged to the branch component:
//
//   - Misfetch (unidentified unconditional, or predicted-taken conditional
//     without a BTB target): fetch runs down the fall-through and redirects
//     at t+1+DecodeLatency — 2 cycles / 8 slots at the paper's parameters.
//   - Mispredict (wrong conditional direction, or stale indirect target):
//     fetch runs down the predicted path and redirects at
//     t+1+ResolveLatency — 4 cycles / 16 slots.
//   - Combined (predicted taken, no target, actually not taken): the
//     fall-through is fetched until decode, the computed target path until
//     resolution; total cost equals a mispredict.
//
// During the window the wrong path is fetched from the static image under
// the live predictor, one issue group per cycle, touching the I-cache; the
// configured policy decides what a wrong-path miss does. A blocking fill
// initiated on the wrong path (Optimistic; Decode past its gate) extends
// the stall beyond the window — the overhang is charged to wrong_icache.
// Under Resume the fill lands in the resume buffer and only the bus stays
// busy; a correct-path demand that then needs the bus (or the very line in
// flight) waits, charged to bus.
//
// # Right-path misses
//
// A correct-path miss starts its fill after the policy's gate: immediately
// (Oracle/Optimistic/Resume), after the previous instructions decode
// (Decode: lastIssueCycle+DecodeLatency), or additionally after every
// outstanding branch resolves (Pessimistic). Gate waiting is charged to
// force_resolve, bus waiting to bus, and the fill itself (MissPenalty
// cycles, or L2Latency on an L2 hit) to rt_icache. The single bus carries
// one transfer at a time unless PipelinedMemory is set.
//
// # Prefetching
//
// The paper's next-line prefetcher ("maximal fetchahead, first-time
// referenced"): every fill sets a line's first-reference bit; the first
// fetch from such a line arms a prefetch of the next sequential line,
// issued at end of cycle if the line is absent and the bus is free, into
// the prefetch buffer (committed lazily). The TargetPrefetch and
// StreamDepth extensions add higher-priority branch-target candidates and
// post-fill sequential streaming; at most one prefetch issues per cycle.
//
// # Accounting
//
// Every cycle in which no correct-path instruction issues contributes
// FetchWidth lost slots (a partially filled cycle contributes the unused
// remainder), attributed to exactly one component. Slot conservation —
// cycles·width = instructions + lost slots (± the final cycle's remainder)
// — is asserted by the randomized invariant tests for every policy and
// extension combination.
package core
