package core

import (
	"fmt"
	"strings"

	"specfetch/internal/metrics"
	"specfetch/internal/obs"
)

// Result reports everything one simulation run measured.
type Result struct {
	// Policy echoes the policy that produced the result.
	Policy Policy

	// Insts is the number of correct-path instructions issued.
	Insts int64
	// Cycles is the total simulated cycle count.
	Cycles Cycles

	// Lost is the per-component breakdown of lost issue slots.
	Lost metrics.Breakdown
	// Events counts branch-architecture mishaps and their slot costs.
	Events metrics.BranchEvents
	// Traffic counts line transfers over the memory bus.
	Traffic metrics.Traffic

	// RightPathAccesses is the number of structural correct-path line
	// references (policy independent for a given trace).
	RightPathAccesses int64
	// RightPathMisses is how many of those references missed.
	RightPathMisses int64
	// ReentryMisses counts the rare correct-path misses on re-entering a
	// line after a stall (the line was evicted mid-group); they are
	// excluded from the classification stream.
	ReentryMisses int64
	// WrongPathAccesses / WrongPathMisses count wrong-path line references.
	WrongPathAccesses int64
	WrongPathMisses   int64
	// WrongPathInsts counts instructions fetched down wrong paths.
	WrongPathInsts int64
	// CondBranches counts correct-path conditional branches.
	CondBranches int64
	// Branches counts all correct-path branches.
	Branches int64
	// PolicySwitches counts the Adaptive meta-policy's active-policy changes
	// (always 0 for static runs and for choosers that never move).
	PolicySwitches int64
}

// TotalISPI returns the total penalty in issue slots lost per correct-path
// instruction — the paper's primary metric.
func (r Result) TotalISPI() float64 { return r.Lost.TotalISPI(r.Insts) }

// ISPI returns one component's contribution.
func (r Result) ISPI(c metrics.Component) float64 { return r.Lost.ISPI(c, r.Insts) }

// MissRatioPct returns correct-path misses per instruction, as a percentage
// (the paper's "% Cache Miss" in Table 3).
func (r Result) MissRatioPct() float64 {
	if r.Insts == 0 {
		return 0
	}
	return 100 * float64(r.RightPathMisses) / float64(r.Insts)
}

// WrongPathMissPct returns wrong-path miss occurrences per correct-path
// instruction as a percentage.
func (r Result) WrongPathMissPct() float64 {
	if r.Insts == 0 {
		return 0
	}
	return 100 * float64(r.WrongPathMisses) / float64(r.Insts)
}

// PHTMispredictISPI returns issue slots lost to conditional-direction
// mispredicts per instruction (Table 3, "PHT Mispredict ISPI").
func (r Result) PHTMispredictISPI() float64 {
	return r.Events.PHTMispredictSlots.PerInst(r.Insts)
}

// BTBMisfetchISPI returns issue slots lost to misfetches per instruction
// (Table 3, "BTB Misfetch ISPI").
func (r Result) BTBMisfetchISPI() float64 {
	return r.Events.BTBMisfetchSlots.PerInst(r.Insts)
}

// BTBMispredictISPI returns issue slots lost to stale BTB targets per
// instruction (Table 3, "BTB Mispredict ISPI").
func (r Result) BTBMispredictISPI() float64 {
	return r.Events.BTBMispredictSlots.PerInst(r.Insts)
}

// AuditFinal restates the counters obs.AuditProbe.Verify cross-checks, so
// every auditor attachment site builds the same subset the same way.
func (r Result) AuditFinal() obs.AuditFinal {
	return obs.AuditFinal{
		Insts:          r.Insts,
		Cycles:         r.Cycles,
		Lost:           r.Lost,
		DemandFills:    r.Traffic.DemandFills,
		WrongPathFills: r.Traffic.WrongPathFills,
		PrefetchFills:  r.Traffic.PrefetchFills,
	}
}

// IPC returns useful instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// String renders a one-run summary for tools and logs.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d insts, %d cycles, IPC %.2f, ISPI %.3f (",
		r.Policy, r.Insts, r.Cycles, r.IPC(), r.TotalISPI())
	for i, c := range metrics.Components() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s %.3f", c, r.ISPI(c))
	}
	fmt.Fprintf(&b, "), miss %.2f%%, traffic %d", r.MissRatioPct(), r.Traffic.Total())
	return b.String()
}
