package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"specfetch/internal/bpred"
	"specfetch/internal/obs"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// The series-identity suite: interval sampling is part of the machine's
// observable behaviour, so the skip-ahead core must emit the exact snapshot
// sequence the reference stepper does — including snapshots interpolated at
// sample boundaries that fall inside a bulk plain-issue delta. These tests
// hold IntervalSampler points and WindowSeries records to element-wise
// identity across both step modes, and prove a sample-only probe leaves the
// run's Result untouched (the disabled-path neutrality the layer promises).

// runSampled executes one cell in the given mode with probe attached via
// Config.Probe, returning the Result.
func runSampled(t *testing.T, cfg Config, bench *synth.Bench, seed uint64,
	mode StepMode, probe obs.Probe, insts int64) Result {
	t.Helper()
	cfg.StepMode = mode
	cfg.MaxInsts = insts
	cfg.Probe = probe
	rd := trace.NewLimitReader(bench.NewWalker(seed), insts+insts/4)
	pred, err := bpred.ByName("")
	if err != nil {
		t.Fatalf("predictor: %v", err)
	}
	res, err := Run(cfg, bench.Image(), rd, pred())
	if err != nil {
		t.Fatalf("%s policy %v mode %v: %v", bench.Profile().Name, cfg.Policy, mode, err)
	}
	return res
}

// TestSeriesIdentityAcrossStepModes pins the interval series to step-mode
// identity on one profile across every policy, both paper miss penalties,
// and sample intervals chosen to land boundaries mid-bulk (prime), mid-cycle
// (not a width multiple), and on cycle edges (width multiple).
func TestSeriesIdentityAcrossStepModes(t *testing.T) {
	t.Parallel()
	const insts = 30_000
	bench := synth.MustBuild(synth.GCC())
	for _, pen := range []int{5, 20} {
		for _, interval := range []int64{257, 1000, 4096} {
			for _, pol := range Policies() {
				cfg := DefaultConfig()
				cfg.Policy = pol
				cfg.MissPenalty = pen
				cfg.SampleInterval = interval

				sampRef := obs.NewIntervalSampler()
				sampFast := obs.NewIntervalSampler()
				resRef := runSampled(t, cfg, bench, 0x5eed, StepReference, sampRef, insts)
				resFast := runSampled(t, cfg, bench, 0x5eed, StepSkipAhead, sampFast, insts)
				if !reflect.DeepEqual(resRef, resFast) {
					t.Fatalf("pen %d interval %d policy %v: Results differ between modes", pen, interval, pol)
				}
				refJSON, _ := json.Marshal(sampRef.Points())
				fastJSON, _ := json.Marshal(sampFast.Points())
				if !bytes.Equal(refJSON, fastJSON) {
					diffSeries(t, sampRef.Points(), sampFast.Points(), pen, interval, pol)
				}

				winRef := obs.NewWindowSeries()
				winFast := obs.NewWindowSeries()
				runSampled(t, cfg, bench, 0x5eed, StepReference, winRef, insts)
				runSampled(t, cfg, bench, 0x5eed, StepSkipAhead, winFast, insts)
				rr, fr := winRef.Records(), winFast.Records()
				if !reflect.DeepEqual(rr, fr) {
					n := min(len(rr), len(fr))
					for i := 0; i < n; i++ {
						if rr[i] != fr[i] {
							t.Fatalf("pen %d interval %d policy %v: window %d differs\nreference: %+v\nskipahead: %+v",
								pen, interval, pol, i, rr[i], fr[i])
						}
					}
					t.Fatalf("pen %d interval %d policy %v: window count differs: reference %d, skipahead %d",
						pen, interval, pol, len(rr), len(fr))
				}

				// A sample-only probe must not perturb the run: the Result
				// equals a probe-free run's bit for bit.
				bare := runSampled(t, cfg, bench, 0x5eed, StepSkipAhead, nil, insts)
				if !reflect.DeepEqual(bare, resFast) {
					t.Fatalf("pen %d interval %d policy %v: sample-only probe changed the Result", pen, interval, pol)
				}
				_ = resRef
			}
		}
	}
}

// diffSeries reports the first diverging point, or the length mismatch.
func diffSeries(t *testing.T, ref, fast []obs.SeriesPoint, pen int, interval int64, pol Policy) {
	t.Helper()
	n := min(len(ref), len(fast))
	for i := 0; i < n; i++ {
		if ref[i] != fast[i] {
			t.Fatalf("pen %d interval %d policy %v: point %d differs\nreference: %+v\nskipahead: %+v",
				pen, interval, pol, i, ref[i], fast[i])
		}
	}
	t.Fatalf("pen %d interval %d policy %v: point count differs: reference %d, skipahead %d",
		pen, interval, pol, len(ref), len(fast))
}

// TestSampleOnlyProbeKeepsFastIssue pins the gate decision: an interval
// sampler or window series attached alone keeps the bulk path enabled, while
// an event-consuming probe (or a Multi composite, which might hide one)
// disables it.
func TestSampleOnlyProbeKeepsFastIssue(t *testing.T) {
	t.Parallel()
	bench := synth.MustBuild(synth.GCC())
	mk := func(probe obs.Probe) *Engine {
		cfg := DefaultConfig()
		cfg.SampleInterval = 1000
		cfg.MaxInsts = 1000
		cfg.Probe = probe
		rd := trace.NewLimitReader(bench.NewWalker(1), 2000)
		pred, _ := bpred.ByName("")
		e, err := NewEngine(cfg, bench.Image(), rd, pred())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if e := mk(obs.NewIntervalSampler()); !e.fastIssue || e.sampler == nil || e.probe != nil {
		t.Errorf("IntervalSampler: fastIssue=%v sampler=%v probe=%v; want true/set/nil",
			e.fastIssue, e.sampler != nil, e.probe != nil)
	}
	if e := mk(obs.NewWindowSeries()); !e.fastIssue || e.sampler == nil {
		t.Errorf("WindowSeries: fastIssue=%v sampler=%v; want true/set", e.fastIssue, e.sampler != nil)
	}
	if e := mk(obs.NewEventRecorder(16)); e.fastIssue {
		t.Error("event recorder left fastIssue enabled")
	}
	if e := mk(obs.Multi(obs.NewIntervalSampler(), obs.NewWindowSeries())); e.fastIssue {
		t.Error("Multi composite left fastIssue enabled (it cannot prove all parts sample-only)")
	}
}

// TestMidSkipBudgetStopSeriesMerge is the run-end merge regression: with the
// instruction budget a multiple of the sample interval and the final
// stretch of the run issued by the bulk path, the boundary sample for the
// last instruction is emitted from inside the bulk delta and the engine's
// run-end sample then arrives with the same instruction count but a later
// cycle (the trailing cycles the clock jumped over). That trailing sample
// must merge into the last point — never drop, never append a duplicate —
// in both step modes, leaving cumulative values equal to the Result's.
func TestMidSkipBudgetStopSeriesMerge(t *testing.T) {
	t.Parallel()
	// A plain-heavy stand-in maximises the chance the budget boundary lands
	// inside a bulk region (long basic blocks, fat loop bodies).
	p := synth.Su2cor()
	p.Name = "bulkmerge"
	p.MeanBlockLen *= 2
	bench := synth.MustBuild(p)

	const interval, insts = 5_000, 30_000
	for _, pol := range []Policy{Oracle, Resume} {
		for _, mode := range []StepMode{StepReference, StepSkipAhead} {
			cfg := DefaultConfig()
			cfg.Policy = pol
			cfg.SampleInterval = interval

			samp := obs.NewIntervalSampler()
			win := obs.NewWindowSeries()
			res := runSampled(t, cfg, bench, 7, mode, samp, insts)
			runSampled(t, cfg, bench, 7, mode, win, insts)

			pts := samp.Points()
			if want := insts / interval; len(pts) != int(want) {
				t.Fatalf("%v/%v: %d points, want %d (trailing sample must merge, not append or drop)",
					pol, mode, len(pts), want)
			}
			last := pts[len(pts)-1]
			if last.Insts != insts || last.Cycle != res.Cycles.Int64() {
				t.Errorf("%v/%v: last point at %d insts / cycle %d, want %d / %d",
					pol, mode, last.Insts, last.Cycle, int64(insts), res.Cycles.Int64())
			}
			if got, want := last.CumISPI, res.TotalISPI(); got != want {
				t.Errorf("%v/%v: merged CumISPI %v, want run total %v", pol, mode, got, want)
			}

			recs := win.Records()
			if want := insts / interval; len(recs) != int(want) {
				t.Fatalf("%v/%v: %d windows, want %d", pol, mode, len(recs), want)
			}
			wlast := recs[len(recs)-1]
			if wlast.EndInsts != insts || wlast.EndCycle != res.Cycles.Int64() {
				t.Errorf("%v/%v: last window ends at %d insts / cycle %d, want %d / %d",
					pol, mode, wlast.EndInsts, wlast.EndCycle, int64(insts), res.Cycles.Int64())
			}
			var lostSum int64
			for _, r := range recs {
				lostSum += r.TotalLost()
			}
			var resLost int64
			for _, c := range res.Lost {
				resLost += c.Int64()
			}
			if lostSum != resLost {
				t.Errorf("%v/%v: windows carry %d lost slots, run total %d (double count or drop)",
					pol, mode, lostSum, resLost)
			}
		}
	}
}
