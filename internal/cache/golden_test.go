package cache

import (
	"math/rand"
	"testing"
)

// refCache is a deliberately naive reference model of a set-associative LRU
// cache with an LRU victim buffer, used to cross-check ICache under random
// operation streams.
type refCache struct {
	assoc, nsets, victimCap int
	// sets[i] holds resident lines of set i, most recently used last.
	sets [][]uint64
	// victim holds parked lines, oldest first.
	victim []uint64
}

func newRef(cfg Config) *refCache {
	r := &refCache{assoc: cfg.Assoc, nsets: cfg.NumSets(), victimCap: cfg.VictimLines}
	r.sets = make([][]uint64, r.nsets)
	return r
}

func (r *refCache) setOf(line uint64) int { return int(line % uint64(r.nsets)) }

func (r *refCache) findSet(line uint64) int {
	s := r.sets[r.setOf(line)]
	for i, l := range s {
		if l == line {
			return i
		}
	}
	return -1
}

func (r *refCache) findVictim(line uint64) int {
	for i, l := range r.victim {
		if l == line {
			return i
		}
	}
	return -1
}

func (r *refCache) present(line uint64) bool {
	return r.findSet(line) >= 0 || r.findVictim(line) >= 0
}

func (r *refCache) touch(line uint64) {
	set := r.setOf(line)
	i := r.findSet(line)
	s := r.sets[set]
	l := s[i]
	r.sets[set] = append(append(s[:i:i], s[i+1:]...), l)
}

func (r *refCache) victimRemove(line uint64) bool {
	if i := r.findVictim(line); i >= 0 {
		r.victim = append(r.victim[:i], r.victim[i+1:]...)
		return true
	}
	return false
}

func (r *refCache) victimAdd(line uint64) {
	if r.victimCap == 0 {
		return
	}
	if r.victimRemove(line) {
		// refresh recency
	}
	if len(r.victim) == r.victimCap {
		r.victim = r.victim[1:]
	}
	r.victim = append(r.victim, line)
}

func (r *refCache) fill(line uint64) {
	r.victimRemove(line)
	set := r.setOf(line)
	if i := r.findSet(line); i >= 0 {
		s := r.sets[set]
		l := s[i]
		r.sets[set] = append(append(s[:i:i], s[i+1:]...), l)
		return
	}
	if len(r.sets[set]) == r.assoc {
		evicted := r.sets[set][0]
		r.sets[set] = r.sets[set][1:]
		r.victimAdd(evicted)
	}
	r.sets[set] = append(r.sets[set], line)
}

func (r *refCache) access(line uint64) bool {
	if r.findSet(line) >= 0 {
		r.touch(line)
		return true
	}
	if r.victimRemove(line) {
		r.fill(line)
		return true
	}
	return false
}

// TestICacheAgainstGoldenModel drives the real cache and the reference model
// with identical random operation streams and requires identical observable
// behaviour (hit/miss outcomes and residency probes).
func TestICacheAgainstGoldenModel(t *testing.T) {
	configs := []Config{
		{SizeBytes: 1024, LineBytes: 32, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 32, Assoc: 2},
		{SizeBytes: 2048, LineBytes: 64, Assoc: 4},
		{SizeBytes: 1024, LineBytes: 32, Assoc: 1, VictimLines: 4},
		{SizeBytes: 1024, LineBytes: 32, Assoc: 2, VictimLines: 8},
	}
	for _, cfg := range configs {
		cfg := cfg
		real := MustNew(cfg)
		ref := newRef(cfg)
		rng := rand.New(rand.NewSource(int64(cfg.SizeBytes + cfg.Assoc + cfg.VictimLines)))
		const ops = 20_000
		lineSpace := uint64(cfg.NumLines() * 4) // 4x capacity: plenty of conflicts
		for i := 0; i < ops; i++ {
			line := rng.Uint64() % lineSpace
			switch rng.Intn(3) {
			case 0: // access
				got, want := real.Access(line), ref.access(line)
				if got != want {
					t.Fatalf("%+v op %d: Access(%d) = %v, golden %v", cfg, i, line, got, want)
				}
			case 1: // fill
				real.Fill(line)
				ref.fill(line)
			case 2: // probe
				got, want := real.Probe(line), ref.present(line)
				if got != want {
					t.Fatalf("%+v op %d: Probe(%d) = %v, golden %v", cfg, i, line, got, want)
				}
			}
		}
	}
}
