package cache

import (
	"testing"
	"testing/quick"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Assoc: 1},
		{SizeBytes: 8192, LineBytes: 0, Assoc: 1},
		{SizeBytes: 8192, LineBytes: 32, Assoc: 0},
		{SizeBytes: 8000, LineBytes: 32, Assoc: 1}, // not a power of two
		{SizeBytes: 8192, LineBytes: 24, Assoc: 1}, // line not a power of two
		{SizeBytes: 8192, LineBytes: 32, Assoc: 3}, // 85.33 sets
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.NumSets() != 256 || good.NumLines() != 256 {
		t.Errorf("8K DM: sets %d lines %d", good.NumSets(), good.NumLines())
	}
	sa := Config{SizeBytes: 8192, LineBytes: 32, Assoc: 4}
	if sa.NumSets() != 64 || sa.NumLines() != 256 {
		t.Errorf("8K 4-way: sets %d lines %d", sa.NumSets(), sa.NumLines())
	}
}

func TestAccessFillProbe(t *testing.T) {
	c := MustNew(DefaultConfig())
	if c.Access(5) {
		t.Fatal("hit in empty cache")
	}
	if c.Probe(5) {
		t.Fatal("probe hit in empty cache")
	}
	c.Fill(5)
	if !c.Probe(5) || !c.Access(5) {
		t.Fatal("miss after fill")
	}
	if c.Accesses != 2 || c.Misses != 1 || c.Fills != 1 {
		t.Errorf("counters: %d/%d/%d", c.Accesses, c.Misses, c.Fills)
	}
	if mr := c.MissRate(); mr != 0.5 {
		t.Errorf("miss rate %v", mr)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := MustNew(DefaultConfig()) // 256 sets
	c.Fill(7)
	evicted, had := c.Fill(7 + 256) // same set
	if !had || evicted != 7 {
		t.Errorf("evicted %d,%v; want 7,true", evicted, had)
	}
	if c.Probe(7) {
		t.Error("line 7 still present after conflict eviction")
	}
	if !c.Probe(7 + 256) {
		t.Error("new line absent")
	}
}

func TestSetAssocLRU(t *testing.T) {
	c := MustNew(Config{SizeBytes: 4 * 32, LineBytes: 32, Assoc: 2}) // 2 sets, 2 ways
	// Lines 0, 2, 4 all map to set 0.
	c.Fill(0)
	c.Fill(2)
	c.Access(0) // make 2 the LRU
	evicted, had := c.Fill(4)
	if !had || evicted != 2 {
		t.Errorf("evicted %d,%v; want 2,true", evicted, had)
	}
	if !c.Probe(0) || !c.Probe(4) || c.Probe(2) {
		t.Error("wrong lines resident after LRU eviction")
	}
}

func TestFirstRefBit(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Fill(9)
	if !c.ConsumeFirstRef(9) {
		t.Fatal("first-reference bit not set after fill")
	}
	if c.ConsumeFirstRef(9) {
		t.Fatal("first-reference bit not cleared by consume")
	}
	// Refill sets it again.
	c.Fill(9)
	if !c.ConsumeFirstRef(9) {
		t.Fatal("first-reference bit not set after refill")
	}
	if c.ConsumeFirstRef(12345) {
		t.Fatal("consume on absent line returned true")
	}
}

func TestReset(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Fill(1)
	c.Access(1)
	c.Reset()
	if c.Probe(1) || c.Accesses != 0 || c.Misses != 0 || c.Fills != 0 {
		t.Error("reset did not clear state")
	}
}

// TestFillThenProbeProperty: any filled line is resident until evicted by a
// same-set fill.
func TestFillThenProbeProperty(t *testing.T) {
	c := MustNew(DefaultConfig())
	prop := func(line uint16) bool {
		l := uint64(line)
		c.Fill(l)
		return c.Probe(l)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestEvictionSetInvariant: an evicted line always belongs to the same set
// as the line that displaced it.
func TestEvictionSetInvariant(t *testing.T) {
	c := MustNew(Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2}) // 16 sets
	prop := func(lines []uint16) bool {
		for _, raw := range lines {
			l := uint64(raw)
			if ev, had := c.Fill(l); had && ev%16 != l%16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBus(t *testing.T) {
	var b Bus
	if b.Busy(0) {
		t.Fatal("fresh bus busy")
	}
	done := b.Start(10, 5)
	if done != 15 {
		t.Fatalf("done = %d", done)
	}
	if !b.Busy(14) || b.Busy(15) {
		t.Error("busy window wrong")
	}
	// A second transfer queues behind the first.
	done2 := b.Start(12, 5)
	if done2 != 20 {
		t.Fatalf("queued transfer done = %d, want 20", done2)
	}
	if b.Transfers != 2 {
		t.Errorf("transfers = %d", b.Transfers)
	}
	b.Reset()
	if b.Busy(0) || b.Transfers != 0 {
		t.Error("reset did not clear bus")
	}
}

func TestLineBuffer(t *testing.T) {
	var lb LineBuffer
	if lb.Valid() {
		t.Fatal("zero buffer valid")
	}
	lb.Set(42, 100)
	if !lb.Valid() || lb.Line() != 42 || lb.ReadyAt() != 100 {
		t.Fatal("set fields wrong")
	}
	if lb.Ready(42, 99) {
		t.Error("ready before completion")
	}
	if !lb.Ready(42, 100) {
		t.Error("not ready at completion")
	}
	if lb.Ready(43, 200) {
		t.Error("ready for wrong line")
	}
	if !lb.Pending(99) || lb.Pending(100) {
		t.Error("pending window wrong")
	}

	c := MustNew(DefaultConfig())
	if lb.CommitTo(c, 99) {
		t.Error("commit before completion succeeded")
	}
	if !lb.CommitTo(c, 100) {
		t.Error("commit at completion failed")
	}
	if !c.Probe(42) {
		t.Error("committed line absent from cache")
	}
	if lb.Valid() {
		t.Error("buffer still valid after commit")
	}
}
