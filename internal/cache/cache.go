// Package cache implements the instruction-cache and memory-interface
// substrate: a set-associative (paper: direct-mapped) I-cache with
// first-reference bits for next-line prefetching, a single-channel memory
// bus, and the one-line resume/prefetch buffers the paper's Resume policy
// and prefetcher require.
package cache

import (
	"fmt"
	"math/bits"

	"specfetch/internal/isa"
	"specfetch/internal/metrics"
)

// Config sizes an instruction cache.
type Config struct {
	// SizeBytes is the total capacity; must be a power of two.
	SizeBytes int
	// LineBytes is the line size; must be a power of two.
	LineBytes int
	// Assoc is the set associativity; the paper uses 1 (direct mapped).
	Assoc int
	// VictimLines, when positive, adds a fully associative victim buffer
	// of that many lines (Jouppi): evicted lines are parked there and a
	// miss that hits the victim buffer swaps the line back in without a
	// memory transfer. Extension beyond the paper; 0 disables it.
	VictimLines int
}

// DefaultConfig is the paper's baseline 8KB direct-mapped cache with
// 32-byte lines.
func DefaultConfig() Config {
	return Config{SizeBytes: 8 * 1024, LineBytes: isa.DefaultLineBytes, Assoc: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0:
		return fmt.Errorf("cache: size %d not a positive power of two", c.SizeBytes)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a positive power of two", c.LineBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("cache: associativity %d not positive", c.Assoc)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("cache: size %d not divisible by line*assoc=%d", c.SizeBytes, c.LineBytes*c.Assoc)
	case c.VictimLines < 0:
		return fmt.Errorf("cache: negative victim buffer size %d", c.VictimLines)
	}
	nsets := c.NumSets()
	if nsets&(nsets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", nsets)
	}
	return nil
}

// NumSets returns the number of sets.
func (c Config) NumSets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// NumLines returns the total line count.
func (c Config) NumLines() int { return c.SizeBytes / c.LineBytes }

type way struct {
	valid bool
	tag   uint64
	// firstRef is the paper's one-bit next-line prefetch trigger: set when
	// the line is first loaded, cleared by the first fetch that consumes it.
	firstRef bool
	lru      uint64
}

// ICache is a set-associative instruction cache over line numbers (byte
// address / line size). It holds no timing state; the fetch engine owns time.
type ICache struct {
	cfg  Config
	sets [][]way
	// nsets is a power of two (validated); setMask/tagShift turn the
	// set/tag split into mask-and-shift instead of hardware divides.
	nsets    uint64
	setMask  uint64
	tagShift uint
	clock    uint64
	// epoch is a monotone token for the array's residency state: it advances
	// on every event that can change which lines are resident (fills,
	// invalidations, resets) and never repeats within one cache instance.
	// Callers that prove "lines L..L+k are all resident" may reuse that proof
	// for as long as Epoch is unchanged. It starts at 1 so a zeroed external
	// memo entry can never appear current.
	epoch uint64
	// victim is the optional fully associative victim buffer (LRU).
	victim []victimEntry

	// Counters (structural, not timing).
	Accesses uint64
	Misses   uint64
	Fills    uint64
	// VictimHits counts misses satisfied by the victim buffer.
	VictimHits uint64
}

// victimEntry is one parked eviction.
type victimEntry struct {
	line uint64
	lru  uint64
}

// New builds an empty cache.
func New(cfg Config) (*ICache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := make([][]way, cfg.NumSets())
	for i := range sets {
		sets[i] = make([]way, cfg.Assoc)
	}
	nsets := uint64(cfg.NumSets())
	c := &ICache{
		cfg: cfg, sets: sets, nsets: nsets,
		setMask:  nsets - 1,
		tagShift: uint(bits.TrailingZeros64(nsets)),
		epoch:    1,
	}
	if cfg.VictimLines > 0 {
		c.victim = make([]victimEntry, 0, cfg.VictimLines)
	}
	return c, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *ICache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *ICache) Config() Config { return c.cfg }

// Geom returns the line geometry helper for this cache.
func (c *ICache) Geom() isa.LineGeom { return isa.LineGeom{LineBytes: c.cfg.LineBytes} }

func (c *ICache) setTag(line uint64) (uint64, uint64) {
	return line & c.setMask, line >> c.tagShift
}

// find returns the way holding line, or nil.
func (c *ICache) find(line uint64) *way {
	set, tag := c.setTag(line)
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			return w
		}
	}
	return nil
}

// Access looks line up as a demand fetch: it updates LRU state and the
// hit/miss counters, and reports whether the line is resident. A miss that
// hits the victim buffer swaps the line back into the array (displacing the
// set's LRU way into the buffer) and counts as a hit.
func (c *ICache) Access(line uint64) bool {
	c.Accesses++
	if w := c.find(line); w != nil {
		c.clock++
		w.lru = c.clock
		return true
	}
	if c.victimTake(line) {
		c.fillNoCount(line)
		c.VictimHits++
		return true
	}
	c.Misses++
	return false
}

// victimFind returns the victim-buffer index of line, or -1.
func (c *ICache) victimFind(line uint64) int {
	for i := range c.victim {
		if c.victim[i].line == line {
			return i
		}
	}
	return -1
}

// victimTake removes line from the victim buffer if present.
func (c *ICache) victimTake(line uint64) bool {
	if i := c.victimFind(line); i >= 0 {
		c.victim = append(c.victim[:i], c.victim[i+1:]...)
		return true
	}
	return false
}

// victimInsert parks an evicted line, displacing the oldest entry if full.
func (c *ICache) victimInsert(line uint64) {
	if cap(c.victim) == 0 {
		return
	}
	if i := c.victimFind(line); i >= 0 {
		c.victim[i].lru = c.clock
		return
	}
	if len(c.victim) < cap(c.victim) {
		c.victim = append(c.victim, victimEntry{line: line, lru: c.clock})
		return
	}
	oldest := 0
	for i := range c.victim {
		if c.victim[i].lru < c.victim[oldest].lru {
			oldest = i
		}
	}
	c.victim[oldest] = victimEntry{line: line, lru: c.clock}
}

// Probe reports residency (array or victim buffer) without disturbing LRU
// or counters. The prefetcher uses it to test "line i+1 already in cache".
func (c *ICache) Probe(line uint64) bool {
	return c.find(line) != nil || c.victimFind(line) >= 0
}

// ProbeArray reports residency in the cache array alone — no victim-buffer
// consultation, no LRU or counter side effects. The skip-ahead engine uses
// it to test whether a run of consecutive fetches would all hit trivially: a
// victim-buffer hit has side effects (the swap back into the array), so such
// lines must go through Access instead.
func (c *ICache) ProbeArray(line uint64) bool { return c.find(line) != nil }

// WayHandle is an opaque reference to the array way holding a line. A
// ProbeWay/TouchWay pair costs one tag lookup where ProbeArray followed by
// Touch costs two; handles stay valid only until the next Fill, invalidation,
// or Reset, so callers must not hold them across such calls.
type WayHandle *way

// ProbeWay is ProbeArray returning the way itself (nil when the line is not
// in the array), for callers that will touch the line after probing it.
func (c *ICache) ProbeWay(line uint64) WayHandle { return WayHandle(c.find(line)) }

// TouchWay applies n consecutive demand hits to a previously probed way:
// the state change n hitting Access calls would make (Accesses += n, LRU
// clock += n, recency set to the final clock — intermediate clock values are
// unobservable because no other access interleaves).
func (c *ICache) TouchWay(h WayHandle, n int) {
	if n <= 0 {
		return
	}
	c.Accesses += uint64(n)
	c.clock += uint64(n)
	(*way)(h).lru = c.clock
}

// Epoch returns the current residency token (see the field comment).
func (c *ICache) Epoch() uint64 { return c.epoch }

// BulkHits applies n demand hits whose residency the caller has already
// proven under the current Epoch, without resolving any way: Accesses and the
// LRU clock advance by n and nothing else changes. The touched ways' recency
// is deliberately left stale, which is only sound for a direct-mapped cache
// (Assoc == 1), where victim selection never consults recency; callers on
// associative geometries must use TouchWay/Touch instead.
func (c *ICache) BulkHits(n int) {
	if n <= 0 {
		return
	}
	c.Accesses += uint64(n)
	c.clock += uint64(n)
}

// Touch applies n consecutive demand hits to a line resident in the array:
// exactly the state change n Access(line) calls would make when every one
// hits (Accesses += n, LRU clock += n, the way's recency set to the final
// clock — intermediate clock values are unobservable because no other access
// interleaves). It reports false, changing nothing, when the line is not in
// the array; the caller must then fall back to per-access simulation.
func (c *ICache) Touch(line uint64, n int) bool {
	w := c.find(line)
	if w == nil {
		return false
	}
	if n <= 0 {
		return true
	}
	c.Accesses += uint64(n)
	c.clock += uint64(n)
	w.lru = c.clock
	return true
}

// Fill installs line, evicting the set's LRU way if needed (into the victim
// buffer when one is configured), and sets the line's first-reference bit.
// It reports the evicted line, if any.
func (c *ICache) Fill(line uint64) (evicted uint64, hadEviction bool) {
	c.Fills++
	c.victimTake(line) // a line entering the array leaves the buffer
	return c.fillNoCount(line)
}

// fillNoCount is Fill without the fill counter (victim swaps reuse it).
func (c *ICache) fillNoCount(line uint64) (evicted uint64, hadEviction bool) {
	set, tag := c.setTag(line)
	c.epoch++
	c.clock++
	if w := c.find(line); w != nil {
		// Refill of a resident line (can happen when a stale buffered fill
		// commits); just refresh recency.
		w.lru = c.clock
		w.firstRef = true
		return 0, false
	}
	victim := 0
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if !w.valid {
			victim = i
			break
		}
		if w.lru < c.sets[set][victim].lru {
			victim = i
		}
	}
	v := &c.sets[set][victim]
	if v.valid {
		evicted = v.tag<<c.tagShift | set
		hadEviction = true
		c.victimInsert(evicted)
	}
	*v = way{valid: true, tag: tag, firstRef: true, lru: c.clock}
	return evicted, hadEviction
}

// ConsumeFirstRef reports whether line's first-reference bit was set, and
// clears it. A fetch from a line whose bit was set triggers the next-line
// prefetch consideration.
func (c *ICache) ConsumeFirstRef(line uint64) bool {
	if w := c.find(line); w != nil && w.firstRef {
		w.firstRef = false
		return true
	}
	return false
}

// MissRate returns misses/accesses so far.
func (c *ICache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// InvalidateAll empties the array and the victim buffer without touching
// the counters — the effect of a context switch on a physically-indexed
// instruction cache.
func (c *ICache) InvalidateAll() {
	c.epoch++
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = way{}
		}
	}
	c.victim = c.victim[:0]
}

// Reset invalidates every line and zeroes the counters. The residency epoch
// is advanced, not rewound: it is a validity token, not a statistic, and must
// never repeat within one instance.
func (c *ICache) Reset() {
	c.epoch++
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = way{}
		}
	}
	c.clock = 0
	c.victim = c.victim[:0]
	c.Accesses, c.Misses, c.Fills, c.VictimHits = 0, 0, 0, 0
}

// Bus is the single channel between the I-cache and the next memory level.
// One transfer (demand fill or prefetch) occupies it for the full miss
// penalty; the paper's contention effects (Resume's bus component, prefetch
// blocking a demand miss) all come from this serialization.
type Bus struct {
	freeAt metrics.Cycles
	// Transfers counts line movements over the bus — the paper's memory
	// traffic metric.
	Transfers uint64
}

// FreeAt returns the first cycle at which a new transfer may start.
func (b *Bus) FreeAt() metrics.Cycles { return b.freeAt }

// Busy reports whether the bus is occupied at cycle now.
func (b *Bus) Busy(now metrics.Cycles) bool { return now < b.freeAt }

// Start begins a transfer of the given duration at the later of now and the
// bus becoming free; it returns the completion cycle.
func (b *Bus) Start(now metrics.Cycles, duration int) metrics.Cycles {
	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	b.freeAt = start + metrics.Cycles(duration)
	b.Transfers++
	return b.freeAt
}

// Reset clears occupancy and counters.
func (b *Bus) Reset() { b.freeAt = 0; b.Transfers = 0 }

// LineBuffer models a one-line holding register with a completion time: the
// resume buffer and the prefetch buffer. The buffered line counts as
// "present" for lookups once its fill completes, until it is committed into
// the cache array.
type LineBuffer struct {
	valid   bool
	line    uint64
	readyAt metrics.Cycles
}

// Set records a fill in flight for line, completing at readyAt.
func (lb *LineBuffer) Set(line uint64, readyAt metrics.Cycles) {
	lb.valid = true
	lb.line = line
	lb.readyAt = readyAt
}

// Valid reports whether the buffer holds (or is receiving) a line.
func (lb *LineBuffer) Valid() bool { return lb.valid }

// Line returns the buffered line number (meaningful only when Valid).
func (lb *LineBuffer) Line() uint64 { return lb.line }

// ReadyAt returns the fill completion cycle (meaningful only when Valid).
func (lb *LineBuffer) ReadyAt() metrics.Cycles { return lb.readyAt }

// Ready reports whether the buffer holds line and its fill has completed by
// cycle now.
func (lb *LineBuffer) Ready(line uint64, now metrics.Cycles) bool {
	return lb.valid && lb.line == line && now >= lb.readyAt
}

// Pending reports whether the buffer is receiving line but the fill has not
// completed by now.
func (lb *LineBuffer) Pending(now metrics.Cycles) bool { return lb.valid && now < lb.readyAt }

// Clear empties the buffer.
func (lb *LineBuffer) Clear() { *lb = LineBuffer{} }

// CommitTo writes the buffered line into the cache (if complete) and clears
// the buffer. It reports whether a commit happened.
func (lb *LineBuffer) CommitTo(c *ICache, now metrics.Cycles) bool {
	if !lb.valid || now < lb.readyAt {
		return false
	}
	c.Fill(lb.line)
	lb.Clear()
	return true
}
