package hosttime

import (
	"runtime"
	"testing"
)

// TestMonotonic pins the clock contract: instants never run backwards, and
// elapsed time over real work is non-negative and finite.
func TestMonotonic(t *testing.T) {
	a := Now()
	// Burn a little real time without sleeping (this package is the
	// wall-clock exemption, but the test should still terminate promptly).
	x := 0
	for i := 0; i < 10_000; i++ {
		x += i
		runtime.Gosched()
	}
	_ = x
	b := Now()
	if d := b.Sub(a); d < 0 {
		t.Errorf("Instant.Sub went backwards: %v", d)
	}
	if d := Since(a); d < 0 {
		t.Errorf("Since went backwards: %v", d)
	}
}

// TestSubIsAntisymmetric: t.Sub(u) == -u.Sub(t).
func TestSubIsAntisymmetric(t *testing.T) {
	a := Now()
	b := Now()
	if b.Sub(a) != -a.Sub(b) {
		t.Errorf("Sub not antisymmetric: %v vs %v", b.Sub(a), a.Sub(b))
	}
}

// TestIsZero distinguishes the unset instant from a real reading.
func TestIsZero(t *testing.T) {
	var zero Instant
	if !zero.IsZero() {
		t.Error("zero Instant not IsZero")
	}
	if Now().IsZero() {
		t.Error("Now() reported IsZero")
	}
}
