// Package hosttime is the simulator's single sanctioned gateway to the
// host's monotonic clock. Simulation results must be a pure function of
// (config, trace, seed) — the determinism analyzer forbids wall-clock reads
// everywhere in the simulator packages — but *measuring the simulator*
// requires real time. Concentrating every clock read here keeps the
// exemption auditable: the analyzer allowlists exactly this package, so any
// other `time.Now()` in the tree is still a lint finding, and a reviewer
// can see at a glance that nothing read here ever feeds back into simulated
// state.
//
// The API deliberately exposes only opaque monotonic instants and
// durations: there is no way to obtain a calendar time, so host timestamps
// cannot leak into rendered artifacts and break byte-reproducibility.
package hosttime

import "time"

// Instant is an opaque monotonic timestamp. The zero Instant is "unset".
type Instant struct {
	t time.Time
}

// Now returns the current monotonic instant.
func Now() Instant {
	return Instant{t: time.Now()}
}

// Since returns the host time elapsed from start to now.
func Since(start Instant) time.Duration {
	return time.Since(start.t)
}

// Sub returns the duration t - u.
func (t Instant) Sub(u Instant) time.Duration {
	return t.t.Sub(u.t)
}

// IsZero reports whether the instant is unset.
func (t Instant) IsZero() bool {
	return t.t.IsZero()
}
