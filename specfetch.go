// Package specfetch reproduces "Instruction Cache Fetch Policies for
// Speculative Execution" (Lee, Baer, Calder, Grunwald; ISCA 1995): a
// trace-driven, cycle-level model of a speculative superscalar fetch unit
// with five I-cache miss policies (Oracle, Optimistic, Resume, Pessimistic,
// Decode), a decoupled BTB + gshare-PHT branch architecture, next-line
// prefetching, and the paper's ISPI penalty accounting.
//
// Quick start:
//
//	bench, _ := specfetch.BuildBenchmark(specfetch.GCC())
//	cfg := specfetch.DefaultConfig()
//	cfg.Policy = specfetch.Resume
//	res, _ := specfetch.RunBenchmark(bench, cfg, 1_000_000, 1)
//	fmt.Printf("ISPI %.3f\n", res.TotalISPI())
//
// The package is a thin facade over the internal packages; everything
// needed to run simulations, generate synthetic workloads, read/write trace
// files, and regenerate the paper's tables and figures is exported here.
package specfetch

import (
	"io"

	"specfetch/internal/adaptive"
	"specfetch/internal/bpred"
	"specfetch/internal/cache"
	"specfetch/internal/classify"
	"specfetch/internal/core"
	"specfetch/internal/distsweep"
	"specfetch/internal/isa"
	"specfetch/internal/metrics"
	"specfetch/internal/obs"
	"specfetch/internal/program"
	"specfetch/internal/sweeplog"
	"specfetch/internal/synth"
	"specfetch/internal/trace"
)

// Policy selects how I-cache misses on speculative paths are handled.
type Policy = core.Policy

// The five fetch policies of the paper's Table 1.
const (
	Oracle      = core.Oracle
	Optimistic  = core.Optimistic
	Resume      = core.Resume
	Pessimistic = core.Pessimistic
	Decode      = core.Decode
)

// Adaptive is the online meta-policy: the engine re-selects one of the five
// static policies at every AdaptInterval-instruction window boundary by
// consulting a Chooser. Config must carry a positive AdaptInterval and a
// Chooser (build one with NewChooser); see DESIGN.md §16.
const Adaptive = core.Adaptive

// Policies lists the five static policies in the paper's presentation
// order. The Adaptive meta-policy is deliberately excluded: it selects over
// this set rather than belonging to it.
func Policies() []Policy { return core.Policies() }

// ParsePolicy parses a policy name ("oracle", "optimistic", ...,
// "adaptive").
func ParsePolicy(s string) (Policy, error) { return core.ParsePolicy(s) }

// Chooser is the strategy interface behind the Adaptive meta-policy: First
// names the policy for the opening window, and Decide consumes each
// completed window's digest to name the policy for the next one. Choosers
// must be deterministic state machines (see internal/adaptive).
type Chooser = core.Chooser

// AdaptWindow is the per-window counter digest delivered to a Chooser at
// every Adaptive window boundary.
type AdaptWindow = core.AdaptWindow

// NewChooser builds an adaptive chooser strategy by name — one of
// ChooserStrategies: "tournament", "ucb", "egreedy", "phase:<period>", or
// "pinned:<policy>". The seed feeds randomized strategies (egreedy);
// deterministic ones accept and ignore it.
func NewChooser(strategy string, seed uint64) (Chooser, error) { return adaptive.New(strategy, seed) }

// ChooserStrategies lists the recognized adaptive strategy names.
func ChooserStrategies() []string { return adaptive.Names() }

// Config parameterizes one simulation run (machine widths, latencies,
// cache geometry, prefetching, instruction budget).
type Config = core.Config

// DefaultConfig is the paper's baseline machine: 4-wide fetch, depth-4
// speculation, 8K direct-mapped I-cache with 32-byte lines, 5-cycle miss
// penalty.
func DefaultConfig() Config { return core.DefaultConfig() }

// StepMode selects the engine's time-advance strategy: the next-event
// skip-ahead core (the zero value and default) or the cycle-by-cycle
// reference stepper. The two are bit-identical — same Result, same probe
// event stream — which the core differential suite proves; the reference
// stepper survives as the executable specification and a debugging aid.
type StepMode = core.StepMode

// The two engine cores, selected via Config.StepMode.
const (
	StepSkipAhead = core.StepSkipAhead
	StepReference = core.StepReference
)

// ParseStepMode parses a step-mode name ("skipahead", "reference").
func ParseStepMode(s string) (StepMode, error) { return core.ParseStepMode(s) }

// StepModes lists both engine cores, skip-ahead first (the default).
func StepModes() []StepMode { return core.StepModes() }

// Arena is reusable per-run engine state: threading one arena through
// back-to-back runs (Config.Arena) makes the steady-state simulation loop
// allocation-free across cells. One arena must not serve two concurrent
// engines; reuse is behaviour-neutral, results are bit-identical either way.
type Arena = core.Arena

// NewArena returns an empty arena; the first run populates it.
func NewArena() *Arena { return core.NewArena() }

// Result reports one run's measurements: cycles, per-component lost issue
// slots, branch events, traffic, and miss counts.
type Result = core.Result

// CacheConfig sizes an instruction cache.
type CacheConfig = cache.Config

// Cycles counts simulated machine cycles; Slots counts instruction-issue
// opportunities (width per cycle). They are distinct defined types so cycle
// and slot quantities cannot be mixed without an explicit conversion — see
// metrics.Cycles and metrics.Slots for the helpers.
type (
	Cycles = metrics.Cycles
	Slots  = metrics.Slots
)

// Component labels one cause of lost issue slots (the stacking order of the
// paper's figures).
type Component = metrics.Component

// The penalty components of Figures 1-4.
const (
	BranchFull   = metrics.BranchFull
	Branch       = metrics.Branch
	ForceResolve = metrics.ForceResolve
	Bus          = metrics.Bus
	RTICache     = metrics.RTICache
	WrongICache  = metrics.WrongICache
)

// Components lists the penalty components in stacking order.
func Components() []Component { return metrics.Components() }

// Addr is a byte address in the simulated instruction space.
type Addr = isa.Addr

// Kind classifies an instruction for the branch architecture.
type Kind = isa.Kind

// Instruction kinds.
const (
	Plain        = isa.Plain
	CondBranch   = isa.CondBranch
	Jump         = isa.Jump
	Call         = isa.Call
	Return       = isa.Return
	IndirectJump = isa.IndirectJump
	IndirectCall = isa.IndirectCall
)

// Image is a static code image; the engine walks it on wrong paths.
type Image = program.Image

// ImageBuilder accumulates instructions for an Image.
type ImageBuilder = program.Builder

// Inst is one static instruction.
type Inst = program.Inst

// NewImageBuilder starts an image at the given base address.
func NewImageBuilder(base Addr) (*ImageBuilder, error) { return program.NewBuilder(base) }

// TraceRecord is one dynamic basic block of the correct execution path.
type TraceRecord = trace.Record

// TraceReader yields trace records until io.EOF.
type TraceReader = trace.Reader

// TraceWriter persists trace records.
type TraceWriter = trace.Writer

// TraceStats summarizes a trace's dynamic behaviour.
type TraceStats = trace.Stats

// NewSliceTrace replays an in-memory record slice.
func NewSliceTrace(recs []TraceRecord) *trace.SliceReader { return trace.NewSliceReader(recs) }

// Predictor is the branch-architecture interface the engine consumes.
type Predictor = bpred.Predictor

// NewPredictor builds the paper's baseline branch architecture: a 64-entry
// 4-way BTB plus a 512-entry gshare PHT, decoupled.
func NewPredictor() Predictor { return bpred.NewDefaultDecoupled() }

// Run simulates one configuration over an explicit image/trace/predictor.
func Run(cfg Config, img *Image, rd TraceReader, pred Predictor) (Result, error) {
	return core.Run(cfg, img, rd, pred)
}

// Probe is the engine instrumentation interface; attach one via
// Config.Probe (and Config.SampleInterval for time-series sampling). A nil
// probe costs one predictable branch per hook — effectively free.
type Probe = obs.Probe

// NopProbe implements every Probe callback as a no-op; embed it in custom
// collectors.
type NopProbe = obs.NopProbe

// Event is one recorded probe callback (EventRecorder's unit).
type Event = obs.Event

// EventRecorder is a bounded ring-buffer probe with JSONL export.
type EventRecorder = obs.EventRecorder

// NewEventRecorder builds a recorder keeping the last capacity events
// (obs.DefaultEventCapacity when capacity <= 0).
func NewEventRecorder(capacity int) *EventRecorder { return obs.NewEventRecorder(capacity) }

// IntervalSampler collects per-interval time series (ISPI breakdown, IPC,
// miss rate, bus occupancy) with CSV/JSON export.
type IntervalSampler = obs.IntervalSampler

// NewIntervalSampler builds an empty interval sampler; set
// Config.SampleInterval to choose the sampling period in instructions.
func NewIntervalSampler() *IntervalSampler { return obs.NewIntervalSampler() }

// SeriesPoint is one interval sample of a run's time series.
type SeriesPoint = obs.SeriesPoint

// WindowSeries captures one WindowRecord per sample interval — the aligned
// per-policy window store the interval-analytics layer is built on. Like
// IntervalSampler it is sample-only: attached alone it keeps the skip-ahead
// engine's bulk path enabled.
type WindowSeries = obs.WindowSeries

// NewWindowSeries builds an empty window store; set Config.SampleInterval
// to choose the window width in instructions.
func NewWindowSeries() *WindowSeries { return obs.NewWindowSeries() }

// WindowRecord is one fixed-instruction-count window of a run in raw-int64
// wire form, with derived ISPI/miss/occupancy accessors.
type WindowRecord = obs.WindowRecord

// Snapshot is the cumulative-counters view delivered to samplers.
type Snapshot = obs.Snapshot

// MetricsRegistry is a Prometheus-style counters registry with text
// exposition and an http.Handler for /metrics endpoints.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MultiProbe composes several probes into one; each callback fans out to
// every part in order.
func MultiProbe(ps ...Probe) Probe { return obs.Multi(ps...) }

// AuditProbe is the runtime invariant auditor: attached to a run it
// re-derives the paper's accounting identities from the event stream,
// panicking with a cycle-stamped *AuditError on any streaming
// inconsistency; Verify cross-checks the final totals against the Result.
type AuditProbe = obs.AuditProbe

// AuditError is a cycle-stamped accounting-invariant violation.
type AuditError = obs.AuditError

// AuditOptions configures an AuditProbe (fetch width, pipelined-memory bus
// overlap).
type AuditOptions = obs.AuditOptions

// AuditFinal carries the Result counters AuditProbe.Verify cross-checks.
type AuditFinal = obs.AuditFinal

// NewAuditProbe builds a runtime invariant auditor for one run.
func NewAuditProbe(opt AuditOptions) *AuditProbe { return obs.NewAuditProbe(opt) }

// WriteChromeTrace renders recorded events as Chrome trace-event JSON,
// loadable in https://ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, events []Event) error { return obs.WriteChromeTrace(w, events) }

// LatencyHistogram is a fixed-bucket log-spaced histogram metric (registered
// via MetricsRegistry.Histogram) with Prometheus text exposition and a
// bounded-error quantile estimator.
type LatencyHistogram = obs.Histogram

// HostSpan is one completed host-side span: a named unit of host work
// (simulation cell, ablation row) with wall-clock timing and allocation
// counts. Host spans measure the simulator, never the simulated machine.
type HostSpan = obs.HostSpan

// SpanTracer records HostSpans concurrently; a nil tracer is inert.
type SpanTracer = obs.SpanTracer

// NewSpanTracer builds an empty host-side span tracer.
func NewSpanTracer() *SpanTracer { return obs.NewSpanTracer() }

// WriteHostTrace renders host-side spans as Chrome trace-event JSON, one
// track per worker.
func WriteHostTrace(w io.Writer, spans []HostSpan) error { return obs.WriteHostTrace(w, spans) }

// FleetProcessSpans is one remote process's named track of host spans, as
// collected by a SweepCoordinator from its worker daemons (see
// SweepCoordinator.FleetSpans).
type FleetProcessSpans = obs.ProcessSpans

// WriteCombinedTrace renders the machine timeline and host spans into one
// Chrome trace: the simulated machine and the simulator that ran it,
// side by side in https://ui.perfetto.dev. Optional fleet tracks (one per
// remote worker process, re-anchored onto the coordinator's clock) extend
// the same file to the whole distributed sweep.
func WriteCombinedTrace(w io.Writer, events []Event, spans []HostSpan, fleet ...FleetProcessSpans) error {
	return obs.WriteCombinedTrace(w, events, spans, fleet...)
}

// CombinedTrace is the full Perfetto trace bundle: machine events, interval
// counter tracks (per-window ISPI, miss rate, bus occupancy, stall
// components), host spans, and fleet processes; Write renders any subset
// into one file.
type CombinedTrace = obs.CombinedTrace

// RunWithProbe is Run with an attached probe and sampling interval — a
// convenience for callers that do not want to touch Config fields.
func RunWithProbe(cfg Config, img *Image, rd TraceReader, pred Predictor, p Probe, sampleEvery int64) (Result, error) {
	cfg.Probe = p
	cfg.SampleInterval = sampleEvery
	return core.Run(cfg, img, rd, pred)
}

// Profile parameterizes the synthetic workload generator.
type Profile = synth.Profile

// Bench is a generated synthetic benchmark: static image plus dynamic
// behaviour, able to produce correct-path traces.
type Bench = synth.Bench

// The 13 stock benchmark profiles, calibrated against the paper's Table 2/3.
var (
	Doduc   = synth.Doduc
	Fpppp   = synth.Fpppp
	Su2cor  = synth.Su2cor
	Ditroff = synth.Ditroff
	GCC     = synth.GCC
	Li      = synth.Li
	Tex     = synth.Tex
	Cfront  = synth.Cfront
	DBpp    = synth.DBpp
	Groff   = synth.Groff
	IDL     = synth.IDL
	Lic     = synth.Lic
	Porky   = synth.Porky
)

// Profiles returns the stock benchmark profiles in the paper's order.
func Profiles() []Profile { return synth.Profiles() }

// ProfileByName finds a stock profile by benchmark name.
func ProfileByName(name string) (Profile, bool) { return synth.ProfileByName(name) }

// BuildBenchmark deterministically generates the benchmark for a profile.
func BuildBenchmark(p Profile) (*Bench, error) { return synth.Build(p) }

// RunBenchmark simulates cfg over a synthetic benchmark for the given
// correct-path instruction budget, using a fresh baseline predictor. The
// stream seed selects the dynamic trace; reusing a seed replays the same
// trace.
func RunBenchmark(b *Bench, cfg Config, insts int64, streamSeed uint64) (Result, error) {
	cfg.MaxInsts = insts
	return core.Run(cfg, b.Image(), b.NewReader(streamSeed, insts+insts/4), NewPredictor())
}

// MissCategories is the paper's Table 4 classification of I-cache misses
// under speculative execution.
type MissCategories = classify.Categories

// ClassifyMisses runs Oracle and Optimistic over the same benchmark trace
// and partitions correct-path misses into Both Miss / Spec Pollute /
// Spec Prefetch / Wrong Path, plus the traffic ratio.
func ClassifyMisses(b *Bench, cfg Config, insts int64, streamSeed uint64) (MissCategories, error) {
	cfg.MaxInsts = insts
	return classify.Run(cfg, b.Image(),
		func() TraceReader { return b.NewReader(streamSeed, insts+insts/4) },
		func() Predictor { return NewPredictor() })
}

// WriteImage serializes a static image in the portable text format.
func WriteImage(w io.Writer, img *Image) error { return program.WriteImage(w, img) }

// ReadImage parses a static image from the portable text format.
func ReadImage(r io.Reader) (*Image, error) { return program.ReadImage(r) }

// OpenTrace wraps r with the appropriate trace reader: gzip streams are
// transparently decompressed, the binary format is detected by its magic
// header, and anything else parses as the text format.
func OpenTrace(r io.Reader) (TraceReader, error) { return trace.OpenFile(r) }

// NewBinaryTraceWriter writes the compact binary trace format.
func NewBinaryTraceWriter(w io.Writer) *trace.BinaryWriter { return trace.NewBinaryWriter(w) }

// NewTextTraceWriter writes the line-oriented text trace format.
func NewTextTraceWriter(w io.Writer) *trace.TextWriter { return trace.NewTextWriter(w) }

// LoopKernel builds a microbenchmark: a single loop of bodyInsts plain
// instructions with geometric trip counts. Cache/branch behaviour is
// analytically known, for controlled policy studies.
func LoopKernel(bodyInsts int, trips float64) (*Bench, error) {
	return synth.LoopKernel(bodyInsts, trips)
}

// CallKernel builds a microbenchmark: a call chain of the given depth,
// isolating call/return prediction.
func CallKernel(depth, bodyInsts int) (*Bench, error) { return synth.CallKernel(depth, bodyInsts) }

// DispatchKernel builds a microbenchmark: an interpreter-style indirect
// dispatch loop over fanout handlers, isolating BTB target misprediction.
func DispatchKernel(fanout, handlerInsts int) (*Bench, error) {
	return synth.DispatchKernel(fanout, handlerInsts)
}

// SweepWireVersion is the distributed-sweep wire protocol version; a
// coordinator and its workers must agree on it.
const SweepWireVersion = distsweep.WireVersion

// SweepJobSpec is one serialized simulation cell of the distributed sweep
// executor: benchmark recipe, machine configuration, stream seed,
// predictor kind, instruction budget, and audit sampling — everything a
// worker process needs to reproduce the cell bit-for-bit.
type SweepJobSpec = distsweep.JobSpec

// SweepJobResult pairs a cell's Result with the audit identity the worker
// re-derived from it, the self-check coordinators verify before accepting
// remote work.
type SweepJobResult = distsweep.JobResult

// SweepBatch is the versioned request unit of the distributed sweep wire
// protocol (POST /v1/run).
type SweepBatch = distsweep.Batch

// SweepBatchResult is the response unit of the distributed sweep wire
// protocol.
type SweepBatchResult = distsweep.BatchResult

// SweepCoordinator fans a sweep work-list out across worker daemon
// processes with per-batch timeouts, capped retries with exponential
// backoff, failed-worker eviction, and in-process fallback; its reduction
// is serial and order-keyed, so rendered sweep bytes are identical to a
// local run. Safe for concurrent use.
type SweepCoordinator = distsweep.Coordinator

// SweepCoordinatorOptions configures a SweepCoordinator (worker URLs,
// batch size, timeout, retry/backoff/eviction policy).
type SweepCoordinatorOptions = distsweep.CoordinatorOptions

// NewSweepCoordinator builds a coordinator over the given worker base
// URLs. Plug it into the experiments via its Options.Dispatch field, or
// run batches directly with Run.
func NewSweepCoordinator(opt SweepCoordinatorOptions) *SweepCoordinator {
	return distsweep.New(opt)
}

// SweepServerOptions configures a worker-side sweep protocol server.
type SweepServerOptions = distsweep.ServerOptions

// SweepServer is the worker-side HTTP server of the distributed sweep
// protocol (/healthz, /v1/run, /metrics); cmd/sweepworker is the stock
// daemon wrapping one.
type SweepServer = distsweep.Server

// NewSweepServer builds a worker-side sweep protocol server around a
// job-running callback.
func NewSweepServer(opt SweepServerOptions) *SweepServer {
	return distsweep.NewServer(opt)
}

// SweepLogger is the structured decision log of the distributed sweep
// layer: a JSONL stream of dispatch/retry/backoff/requeue/evict/fallback
// records with a pinned schema, plus an in-memory flight-recorder ring
// (Recent) that /sweepz renders. A nil *SweepLogger is inert, like a nil
// Probe, so logging never perturbs a sweep's rendered bytes.
type SweepLogger = sweeplog.Logger

// SweepLogOptions configures a SweepLogger (sink writer, ring size,
// injectable clock).
type SweepLogOptions = sweeplog.Options

// SweepLogCause labels why a dispatch decision was taken (retry causes:
// network, 5xx, corrupt, version, tamper; local-fallback causes:
// permanent, retries-exhausted, no-workers).
type SweepLogCause = sweeplog.Cause

// The sweep log's decision-cause taxonomy.
const (
	SweepCauseNetwork          = sweeplog.CauseNetwork
	SweepCause5xx              = sweeplog.Cause5xx
	SweepCauseCorrupt          = sweeplog.CauseCorrupt
	SweepCauseVersion          = sweeplog.CauseVersion
	SweepCauseTamper           = sweeplog.CauseTamper
	SweepCausePermanent        = sweeplog.CausePermanent
	SweepCauseRetriesExhausted = sweeplog.CauseRetriesExhausted
	SweepCauseNoWorkers        = sweeplog.CauseNoWorkers
)

// SweepLogSchemaVersion is the pinned "v" field of every sweep log record.
const SweepLogSchemaVersion = sweeplog.SchemaVersion

// NewSweepLogger builds a structured sweep logger. A zero Options logs to
// the in-memory ring only (flight-recorder mode).
func NewSweepLogger(opt SweepLogOptions) *SweepLogger {
	return sweeplog.New(opt)
}
